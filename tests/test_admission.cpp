/**
 * @file
 * Tests for admission control and weighted-fair scheduling in the
 * serving tier: queue-depth / per-session / cost-budget rejection
 * with typed outcomes, shed accounting in BatchSchedulerStats,
 * weighted round-robin interleaving ratios and the starvation bound
 * under a hot session, per-session ticket ordering across truncated
 * drains interleaved with appends, latency percentile plumbing, and
 * bit-identity of every answered result against sequential
 * backend.run() under every policy.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

/** Bind `count` sessions named s0, s1, ... of `rows` rows each. */
void
bindSessions(SessionCache &cache, Rng &rng, std::size_t count,
             std::size_t rows, std::size_t d,
             EngineKind kind = EngineKind::ExactFloat)
{
    EngineConfig cfg;
    cfg.kind = kind;
    for (std::size_t s = 0; s < count; ++s) {
        cache.bind("s" + std::to_string(s), cfg,
                   randomMatrix(rng, rows, d),
                   randomMatrix(rng, rows, d));
    }
}

TEST(Admission, QueueDepthRejectsWithTypedOutcome)
{
    Rng rng(11000);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 10, d);
    AdmissionPolicy policy;
    policy.maxQueueDepth = 4;
    BatchScheduler scheduler(engine, cache, 0, policy);

    std::uint64_t lastTicket = 0;
    for (int i = 0; i < 4; ++i) {
        const AdmissionOutcome outcome =
            scheduler.submit("s0", randomQuery(rng, d));
        ASSERT_TRUE(outcome.admitted());
        EXPECT_GT(outcome.ticket, lastTicket);
        lastTicket = outcome.ticket;
    }
    for (int i = 0; i < 2; ++i) {
        const AdmissionOutcome shed =
            scheduler.submit("s0", randomQuery(rng, d));
        EXPECT_FALSE(shed.admitted());
        EXPECT_EQ(shed.decision, AdmissionDecision::RejectedQueueFull);
        EXPECT_EQ(shed.ticket, 0u);
    }
    EXPECT_EQ(scheduler.pending(), 4u);
    EXPECT_EQ(scheduler.drain().size(), 4u);
    // Draining frees depth: the next submit is admitted again.
    EXPECT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_STREQ(
        admissionDecisionName(AdmissionDecision::RejectedQueueFull),
        "rejected_queue_full");
}

TEST(Admission, PerSessionCapLeavesOtherSessionsAdmissible)
{
    Rng rng(11100);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 2, 10, d);
    AdmissionPolicy policy;
    policy.maxPendingPerSession = 2;
    BatchScheduler scheduler(engine, cache, 0, policy);

    EXPECT_TRUE(scheduler.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_TRUE(scheduler.submit("s0", randomQuery(rng, d)).admitted());
    const AdmissionOutcome shed =
        scheduler.submit("s0", randomQuery(rng, d));
    EXPECT_EQ(shed.decision, AdmissionDecision::RejectedSessionCap);
    // The cap is per session: s1 is unaffected by s0 being full.
    EXPECT_TRUE(scheduler.submit("s1", randomQuery(rng, d)).admitted());
    EXPECT_TRUE(scheduler.submit("s1", randomQuery(rng, d)).admitted());
    EXPECT_EQ(scheduler.pending(), 4u);
    EXPECT_EQ(scheduler.pendingFor("s0"), 2u);
    EXPECT_EQ(scheduler.pendingFor("s1"), 2u);
    EXPECT_EQ(scheduler.drain().size(), 4u);
}

TEST(Admission, CostBudgetChargesBackendBytes)
{
    Rng rng(11200);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    const auto small = cache.bind("small", cfg,
                                  randomMatrix(rng, 8, d),
                                  randomMatrix(rng, 8, d));
    const auto large = cache.bind("large", cfg,
                                  randomMatrix(rng, 64, d),
                                  randomMatrix(rng, 64, d));

    // The cost estimate is the bound backend's bytes, and probing it
    // perturbs neither the LRU order nor the hit/miss counters.
    const SessionCacheStats before = cache.stats();
    EXPECT_EQ(cache.peekBytes("small"), small->memoryBytes());
    EXPECT_EQ(cache.peekBytes("large"), large->memoryBytes());
    EXPECT_EQ(cache.peekBytes("missing"), 0u);
    const SessionCacheStats after = cache.stats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);

    AdmissionPolicy policy;
    policy.maxQueuedCostBytes =
        small->memoryBytes() + large->memoryBytes() / 2;
    BatchScheduler scheduler(engine, cache, 0, policy);

    EXPECT_TRUE(
        scheduler.submit("small", randomQuery(rng, d)).admitted());
    EXPECT_EQ(scheduler.queuedCostBytes(), small->memoryBytes());
    const AdmissionOutcome shed =
        scheduler.submit("large", randomQuery(rng, d));
    EXPECT_EQ(shed.decision, AdmissionDecision::RejectedCostBudget);
    EXPECT_EQ(scheduler.drain().size(), 1u);
    EXPECT_EQ(scheduler.queuedCostBytes(), 0u);
    // Into an empty queue even an over-budget session is admitted —
    // it must be able to make progress at all.
    EXPECT_TRUE(
        scheduler.submit("large", randomQuery(rng, d)).admitted());
    EXPECT_EQ(scheduler.drain().size(), 1u);
}

TEST(Admission, ShedAccountingInStats)
{
    Rng rng(11300);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 2, 10, d);
    AdmissionPolicy policy;
    policy.maxQueueDepth = 3;
    policy.maxPendingPerSession = 2;
    BatchScheduler scheduler(engine, cache, 0, policy);

    for (int i = 0; i < 2; ++i)
        EXPECT_TRUE(
            scheduler.submit("s0", randomQuery(rng, d)).admitted());
    // Session cap trips before the global queue has filled.
    EXPECT_FALSE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_TRUE(scheduler.submit("s1", randomQuery(rng, d)).admitted());
    // Now the global depth (3) trips for any session.
    EXPECT_FALSE(
        scheduler.submit("s1", randomQuery(rng, d)).admitted());

    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, 5u);
    EXPECT_EQ(stats.rejectedSessionCap, 1u);
    EXPECT_EQ(stats.rejectedQueueFull, 1u);
    EXPECT_EQ(stats.rejectedCostBudget, 0u);
    EXPECT_EQ(stats.rejected(), 2u);
    EXPECT_EQ(scheduler.pending(), 3u);

    scheduler.resetCounters();
    const BatchSchedulerStats zeroed = scheduler.stats();
    EXPECT_EQ(zeroed.submitted, 0u);
    EXPECT_EQ(zeroed.rejected(), 0u);
    EXPECT_EQ(zeroed.queueWaitP99, 0.0);
    // Queued requests survive the counter reset.
    EXPECT_EQ(scheduler.pending(), 3u);
    EXPECT_EQ(scheduler.drain().size(), 3u);
}

TEST(Fairness, WeightedInterleavingRatioOverManyDrains)
{
    Rng rng(11400);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    bindSessions(cache, rng, 2, 12, d);
    BatchScheduler scheduler(engine, cache, 8);
    scheduler.setSessionWeight("s0", 3);
    EXPECT_EQ(scheduler.sessionWeight("s0"), 3u);
    EXPECT_EQ(scheduler.sessionWeight("s1"), 1u);

    // Both sessions stay backlogged for the whole measurement, so
    // every drain of 8 must split 6:2 along the 3:1 weights.
    for (int i = 0; i < 120; ++i)
        ASSERT_TRUE(
            scheduler.submit("s0", randomQuery(rng, d)).admitted());
    for (int i = 0; i < 40; ++i)
        ASSERT_TRUE(
            scheduler.submit("s1", randomQuery(rng, d)).admitted());

    std::map<std::string, std::size_t> answered;
    for (int round = 0; round < 10; ++round) {
        const auto completions = scheduler.drain();
        ASSERT_EQ(completions.size(), 8u);
        for (const ServingResult &done : completions)
            ++answered[done.session];
        // The ratio holds at every drain, not only in aggregate.
        EXPECT_EQ(answered["s0"], answered["s1"] * 3);
    }
    EXPECT_EQ(answered["s0"], 60u);
    EXPECT_EQ(answered["s1"], 20u);
}

TEST(Fairness, HotSessionCannotStarveBacklog)
{
    Rng rng(11500);
    const std::size_t d = 8;
    const std::size_t sessions = 4;
    AttentionEngine engine(2);
    SessionCache cache;
    bindSessions(cache, rng, sessions, 12, d);
    BatchScheduler scheduler(engine, cache, 8);

    // One hot session floods the queue; three cold sessions hold a
    // modest backlog. Strict ticket order would answer all 200 hot
    // requests first; weighted round-robin (equal weights) must give
    // every backlogged session an equal share of each drain.
    for (int i = 0; i < 200; ++i)
        ASSERT_TRUE(
            scheduler.submit("s0", randomQuery(rng, d)).admitted());
    for (std::size_t s = 1; s < sessions; ++s)
        for (int i = 0; i < 30; ++i)
            ASSERT_TRUE(scheduler
                            .submit("s" + std::to_string(s),
                                    randomQuery(rng, d))
                            .admitted());

    std::map<std::string, std::size_t> answered;
    std::size_t total = 0;
    for (int round = 0; round < 15; ++round) {
        for (const ServingResult &done : scheduler.drain()) {
            ++answered[done.session];
            ++total;
        }
    }
    ASSERT_EQ(total, 120u);
    // The acceptance bound: no session's completion share below half
    // its fair weight share (1/4 each). Equal-weight round-robin over
    // always-backlogged sessions actually achieves the full share.
    for (std::size_t s = 0; s < sessions; ++s) {
        EXPECT_GE(answered["s" + std::to_string(s)],
                  total / sessions / 2)
            << "session s" << s << " starved";
    }
    EXPECT_EQ(answered["s0"], 30u);
    EXPECT_EQ(answered["s1"], 30u);
}

/**
 * Regression for the truncation-boundary ordering guarantee: partial
 * drains (maxBatch < pending) interleaved with new submits and a
 * mid-stream append must never answer a session's later ticket
 * before an earlier one, and every answer must stay bit-identical to
 * a sequential run against the backend state served in that drain.
 */
TEST(Fairness, PartialDrainAppendInterleavingKeepsTicketOrder)
{
    Rng rng(11600);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    for (const char *id : {"a", "b"})
        cache.bind(id, cfg, randomMatrix(rng, 16, d),
                   randomMatrix(rng, 16, d));
    BatchScheduler scheduler(engine, cache, 3);

    std::map<std::uint64_t, Vector> queryOf;
    const auto submit = [&](const std::string &session) {
        Vector q = randomQuery(rng, d);
        const AdmissionOutcome outcome = scheduler.submit(session, q);
        ASSERT_TRUE(outcome.admitted());
        queryOf.emplace(outcome.ticket, std::move(q));
    };
    std::map<std::string, std::uint64_t> lastAnswered;
    const auto drainAndCheck = [&] {
        for (const ServingResult &done : scheduler.drain()) {
            EXPECT_GT(done.ticket, lastAnswered[done.session])
                << "session " << done.session
                << " answered out of ticket order";
            lastAnswered[done.session] = done.ticket;
            const auto backend = cache.find(done.session);
            ASSERT_NE(backend, nullptr);
            expectBitIdentical(done.result,
                               backend->run(queryOf.at(done.ticket)));
        }
    };

    submit("a");
    submit("b");
    submit("a");
    submit("b");
    drainAndCheck();  // 3 of 4 answered; one straddles the boundary
    EXPECT_EQ(scheduler.pending(), 1u);
    // New requests append behind the leftover; a's context grows in
    // between, so its remaining requests serve the grown task.
    cache.append("a", randomMatrix(rng, 4, d),
                 randomMatrix(rng, 4, d));
    submit("a");
    submit("b");
    drainAndCheck();
    drainAndCheck();
    EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(Fairness, BitIdenticalToSequentialUnderEveryPolicy)
{
    const std::size_t d = 8;
    AttentionEngine engine(4);

    AdmissionPolicy bounded;
    bounded.maxQueueDepth = 64;
    bounded.maxPendingPerSession = 32;
    AdmissionPolicy costed;
    costed.maxQueuedCostBytes = 1u << 30;
    struct Shape
    {
        std::size_t maxBatch;
        AdmissionPolicy policy;
        bool weighted;
    };
    const std::vector<Shape> shapes = {
        {0, AdmissionPolicy{}, false},  // the pre-admission default
        {4, AdmissionPolicy{}, false},  // truncated drains
        {4, bounded, true},             // bounded + weighted
        {0, costed, false},             // cost budget engaged
    };
    for (const Shape &shape : shapes) {
        SCOPED_TRACE("maxBatch " + std::to_string(shape.maxBatch));
        // Same seed per shape: every policy answers the same queries.
        Rng rng(11700);
        SessionCache cache;
        bindSessions(cache, rng, 3, 16, d,
                     EngineKind::ApproxQuantized);
        BatchScheduler scheduler(engine, cache, shape.maxBatch,
                                 shape.policy);
        if (shape.weighted)
            scheduler.setSessionWeight("s1", 2);

        std::map<std::uint64_t, std::pair<std::string, Vector>> wanted;
        for (int i = 0; i < 18; ++i) {
            const std::string session = "s" + std::to_string(i % 3);
            Vector q = randomQuery(rng, d);
            const AdmissionOutcome outcome =
                scheduler.submit(session, q);
            ASSERT_TRUE(outcome.admitted());
            wanted.emplace(outcome.ticket,
                           std::make_pair(session, std::move(q)));
        }
        std::size_t answered = 0;
        while (scheduler.pending() > 0) {
            for (const ServingResult &done : scheduler.drain()) {
                ++answered;
                const auto &expected = wanted.at(done.ticket);
                EXPECT_EQ(done.session, expected.first);
                const auto backend = cache.find(done.session);
                ASSERT_NE(backend, nullptr);
                expectBitIdentical(done.result,
                                   backend->run(expected.second));
            }
        }
        EXPECT_EQ(answered, wanted.size());
    }
}

TEST(Fairness, LatencyPercentilesPopulateAndReset)
{
    Rng rng(11800);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    bindSessions(cache, rng, 2, 16, d);
    BatchScheduler scheduler(engine, cache, 4);

    EXPECT_EQ(scheduler.stats().queueWaitP99, 0.0);
    for (int i = 0; i < 12; ++i)
        scheduler.submit("s" + std::to_string(i % 2),
                         randomQuery(rng, d));
    while (scheduler.pending() > 0)
        scheduler.drain();

    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.answered, 12u);
    EXPECT_GE(stats.queueWaitP50, 0.0);
    EXPECT_GE(stats.queueWaitP95, stats.queueWaitP50);
    EXPECT_GE(stats.queueWaitP99, stats.queueWaitP95);
    EXPECT_GT(stats.drainServiceP50, 0.0);
    EXPECT_GE(stats.drainServiceP99, stats.drainServiceP50);
    EXPECT_GT(stats.groupServiceP50, 0.0);
    EXPECT_GE(stats.groupServiceP99, stats.groupServiceP50);

    scheduler.resetCounters();
    EXPECT_EQ(scheduler.stats().queueWaitP99, 0.0);
    EXPECT_EQ(scheduler.stats().drainServiceP99, 0.0);
}

TEST(Admission, DrainedDefaultWeightSessionsAreReclaimed)
{
    Rng rng(11900);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 10, d);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    BatchScheduler scheduler(engine, cache, 0);

    // A churny server mints fresh ids per conversation: once each
    // drains, its scheduler state must be reclaimed (bounded memory
    // is the whole point of admission control). All ids resolve to
    // the one bound backend via SessionCache::insert aliases.
    const auto backend = cache.find("s0");
    ASSERT_NE(backend, nullptr);
    for (int conversation = 0; conversation < 8; ++conversation) {
        const std::string id =
            "conv-" + std::to_string(conversation);
        cache.insert(id, backend);
        EXPECT_TRUE(
            scheduler.submit(id, randomQuery(rng, d)).admitted());
        EXPECT_EQ(scheduler.trackedSessions(), 1u);
        EXPECT_EQ(scheduler.drain().size(), 1u);
        EXPECT_EQ(scheduler.trackedSessions(), 0u);
    }

    // A shed submit materializes no state either.
    AdmissionPolicy capped;
    capped.maxQueueDepth = 1;
    BatchScheduler bounded(engine, cache, 0, capped);
    EXPECT_TRUE(
        bounded.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_FALSE(
        bounded.submit("conv-9", randomQuery(rng, d)).admitted());
    EXPECT_EQ(bounded.trackedSessions(), 1u);

    // Non-default weights persist across idle periods; resetting to
    // the default releases an idle session's entry.
    scheduler.setSessionWeight("vip", 3);
    EXPECT_EQ(scheduler.trackedSessions(), 1u);
    EXPECT_EQ(scheduler.sessionWeight("vip"), 3u);
    scheduler.setSessionWeight("vip", 1);
    EXPECT_EQ(scheduler.trackedSessions(), 0u);
    // Setting the default on an untracked session is a no-op.
    scheduler.setSessionWeight("nobody", 1);
    EXPECT_EQ(scheduler.trackedSessions(), 0u);
}

}  // namespace
}  // namespace a3
