/**
 * @file
 * Tests for post-scoring selection (Section IV-D).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "attention/post_scoring.hpp"
#include "attention/reference.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(Threshold, ConversionRoundTrips)
{
    for (double t : {1.0, 2.5, 5.0, 10.0, 20.0, 100.0}) {
        EXPECT_NEAR(percentFromThreshold(thresholdFromPercent(t)), t,
                    1e-9);
    }
}

TEST(Threshold, KnownValues)
{
    // T = 100% -> t = 0 (keep only rows tied with the max).
    EXPECT_NEAR(thresholdFromPercent(100.0), 0.0, 1e-12);
    // T = 100/e % -> t = 1.
    EXPECT_NEAR(thresholdFromPercent(100.0 / std::exp(1.0)), 1.0,
                1e-9);
}

TEST(PostScoring, KeepsRowsWithinGap)
{
    const std::vector<std::uint32_t> rows{3, 7, 9, 12};
    const Vector scores{5.0f, 2.0f, 4.5f, -1.0f};
    const auto kept = postScoringSelect(rows, scores, 1.0);
    EXPECT_EQ(kept, (std::vector<std::uint32_t>{3, 9}));
}

TEST(PostScoring, ZeroGapKeepsOnlyMax)
{
    const std::vector<std::uint32_t> rows{0, 1, 2};
    const Vector scores{1.0f, 3.0f, 3.0f};
    const auto kept = postScoringSelect(rows, scores, 0.0);
    EXPECT_EQ(kept, (std::vector<std::uint32_t>{1, 2}));
}

TEST(PostScoring, HugeGapKeepsEverything)
{
    const std::vector<std::uint32_t> rows{0, 1, 2};
    const Vector scores{-10.0f, 0.0f, 10.0f};
    const auto kept = postScoringSelect(rows, scores, 1e9);
    EXPECT_EQ(kept, rows);
}

TEST(PostScoring, EmptyInput)
{
    EXPECT_TRUE(postScoringSelect({}, {}, 1.0).empty());
}

TEST(PostScoring, NegativeGapFallsBackToTopCandidate)
{
    // T > 100% converts to a negative gap that rejects every row,
    // even the maximum; the selection degrades to the top-scoring
    // candidate instead of returning an empty set.
    const std::vector<std::uint32_t> rows{4, 8, 2};
    const Vector scores{1.0f, 7.0f, 3.0f};
    const double gap = thresholdFromPercent(400.0);
    ASSERT_LT(gap, 0.0);
    EXPECT_EQ(postScoringSelect(rows, scores, gap),
              (std::vector<std::uint32_t>{8}));
}

TEST(PostScoring, NonFiniteScoresFallBackToTopCandidate)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();

    // inf - inf = NaN fails the gap comparison even for the max row;
    // the first infinite row (first-of-equals top score) survives.
    EXPECT_EQ(postScoringSelect({0, 1, 2}, {1.0f, inf, inf}, 1.0),
              (std::vector<std::uint32_t>{1}));

    // All-NaN scores order nothing; the first candidate stands in.
    EXPECT_EQ(postScoringSelect({5, 6}, {nan, nan}, 1.0),
              (std::vector<std::uint32_t>{5}));

    // A NaN-scored candidate never beats an ordered score, even when
    // it comes first.
    EXPECT_EQ(postScoringSelect({3, 9}, {nan, 5.0f}, 1.0),
              (std::vector<std::uint32_t>{9}));
    EXPECT_EQ(postScoringSelect({3, 9, 4}, {nan, 5.0f, 7.0f},
                                thresholdFromPercent(400.0)),
              (std::vector<std::uint32_t>{4}));
}

TEST(PostScoring, ExtremeThresholdsNeverEmptyNonEmptyInput)
{
    Rng rng(3200);
    for (const double tPercent : {1e-12, 1.0, 100.0, 150.0, 1e9}) {
        for (int trial = 0; trial < 50; ++trial) {
            const std::size_t n =
                static_cast<std::size_t>(rng.uniformInt(1, 20));
            std::vector<std::uint32_t> rows(n);
            Vector scores(n);
            for (std::size_t i = 0; i < n; ++i) {
                rows[i] = static_cast<std::uint32_t>(i);
                scores[i] = static_cast<float>(rng.normal(0.0, 3.0));
            }
            const auto kept = postScoringSelect(
                rows, scores, thresholdFromPercent(tPercent));
            EXPECT_FALSE(kept.empty())
                << "T=" << tPercent << " trial " << trial;
        }
    }
}

TEST(PostScoring, PreservesInputOrder)
{
    const std::vector<std::uint32_t> rows{9, 1, 5};
    const Vector scores{3.0f, 3.0f, 3.0f};
    EXPECT_EQ(postScoringSelect(rows, scores, 0.5), rows);
}

/**
 * The defining property (Section IV-D): a row survives iff its
 * post-softmax weight would be at least T% of the maximum weight.
 */
class WeightSemantics : public ::testing::TestWithParam<double>
{
};

TEST_P(WeightSemantics, KeptIffWeightAboveTPercentOfMax)
{
    const double tPercent = GetParam();
    Rng rng(3000 + static_cast<std::uint64_t>(tPercent * 10));
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 40));
        std::vector<std::uint32_t> rows(n);
        Vector scores(n);
        for (std::size_t i = 0; i < n; ++i) {
            rows[i] = static_cast<std::uint32_t>(i);
            scores[i] = static_cast<float>(rng.normal(0.0, 3.0));
        }
        const auto kept = postScoringSelect(
            rows, scores, thresholdFromPercent(tPercent));

        const Vector weights = softmax(scores);
        float maxWeight = 0.0f;
        for (float w : weights)
            maxWeight = std::max(maxWeight, w);
        for (std::size_t i = 0; i < n; ++i) {
            const bool isKept =
                std::find(kept.begin(), kept.end(), rows[i]) !=
                kept.end();
            const double ratio = static_cast<double>(weights[i]) /
                                 static_cast<double>(maxWeight);
            if (ratio > tPercent / 100.0 * (1.0 + 1e-4)) {
                EXPECT_TRUE(isKept) << "ratio " << ratio;
            } else if (ratio < tPercent / 100.0 * (1.0 - 1e-4)) {
                EXPECT_FALSE(isKept) << "ratio " << ratio;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, WeightSemantics,
                         ::testing::Values(1.0, 2.5, 5.0, 10.0, 20.0,
                                           50.0));

/** Monotonicity: lower T (more conservative) never keeps fewer rows. */
TEST(PostScoring, MonotoneInThreshold)
{
    Rng rng(3100);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 30;
        std::vector<std::uint32_t> rows(n);
        Vector scores(n);
        for (std::size_t i = 0; i < n; ++i) {
            rows[i] = static_cast<std::uint32_t>(i);
            scores[i] = static_cast<float>(rng.normal(0.0, 2.0));
        }
        std::size_t prev = 0;
        for (double t : {20.0, 10.0, 5.0, 2.5, 1.0}) {
            const auto kept = postScoringSelect(
                rows, scores, thresholdFromPercent(t));
            EXPECT_GE(kept.size(), prev);
            prev = kept.size();
        }
    }
}

}  // namespace
}  // namespace a3
