/**
 * @file
 * Tests for the pre-sorted key matrix (Section IV-C preprocessing).
 */

#include <gtest/gtest.h>

#include <set>

#include "attention/sorted_key.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

TEST(SortedKey, ColumnsAscending)
{
    Rng rng(900);
    const Matrix key = randomMatrix(rng, 50, 16);
    const SortedKey sk = SortedKey::build(key);
    for (std::size_t c = 0; c < 16; ++c) {
        for (std::size_t p = 1; p < 50; ++p)
            EXPECT_LE(sk.at(p - 1, c).val, sk.at(p, c).val);
    }
}

TEST(SortedKey, EntriesArePermutationOfColumn)
{
    Rng rng(901);
    const Matrix key = randomMatrix(rng, 30, 8);
    const SortedKey sk = SortedKey::build(key);
    for (std::size_t c = 0; c < 8; ++c) {
        std::multiset<float> original;
        std::multiset<float> sorted;
        std::set<std::uint32_t> rowIds;
        for (std::size_t r = 0; r < 30; ++r) {
            original.insert(key(r, c));
            sorted.insert(sk.at(r, c).val);
            rowIds.insert(sk.at(r, c).rowId);
        }
        EXPECT_EQ(original, sorted);
        EXPECT_EQ(rowIds.size(), 30u);  // every row id exactly once
    }
}

TEST(SortedKey, RowIdsPointBackToOriginalValues)
{
    Rng rng(902);
    const Matrix key = randomMatrix(rng, 20, 4);
    const SortedKey sk = SortedKey::build(key);
    for (std::size_t c = 0; c < 4; ++c) {
        for (std::size_t p = 0; p < 20; ++p) {
            const SortedKeyEntry &e = sk.at(p, c);
            EXPECT_EQ(key(e.rowId, c), e.val);
        }
    }
}

TEST(SortedKey, StableTieOrder)
{
    const Matrix key =
        Matrix::fromRows({{1.0f}, {0.0f}, {1.0f}, {0.0f}});
    const SortedKey sk = SortedKey::build(key);
    // Ties keep original row order: zeros (rows 1, 3) then ones (0, 2).
    EXPECT_EQ(sk.at(0, 0).rowId, 1u);
    EXPECT_EQ(sk.at(1, 0).rowId, 3u);
    EXPECT_EQ(sk.at(2, 0).rowId, 0u);
    EXPECT_EQ(sk.at(3, 0).rowId, 2u);
}

TEST(SortedKey, StorageBytesMatchFigure8Layout)
{
    Rng rng(903);
    const Matrix key = randomMatrix(rng, 10, 6);
    const SortedKey sk = SortedKey::build(key);
    EXPECT_EQ(sk.storageBytes(), 10u * 6u * 8u);
    EXPECT_EQ(sk.rows(), 10u);
    EXPECT_EQ(sk.cols(), 6u);
}

}  // namespace
}  // namespace a3
