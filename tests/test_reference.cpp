/**
 * @file
 * Tests for exact floating-point attention (Figure 1 semantics).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "attention/reference.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(Softmax, SumsToOne)
{
    const Vector w = softmax({1.0f, 2.0f, 3.0f, 4.0f});
    float sum = 0.0f;
    for (float x : w)
        sum += x;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Softmax, UniformInputGivesUniformWeights)
{
    const Vector w = softmax({2.0f, 2.0f, 2.0f, 2.0f});
    for (float x : w)
        EXPECT_NEAR(x, 0.25f, 1e-6f);
}

TEST(Softmax, InvariantToConstantShift)
{
    const Vector a = softmax({1.0f, 2.0f, 3.0f});
    const Vector b = softmax({101.0f, 102.0f, 103.0f});
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-6f);
}

TEST(Softmax, StableForLargeMagnitudes)
{
    const Vector w = softmax({1000.0f, 999.0f});
    EXPECT_NEAR(w[0], 1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
    EXPECT_FALSE(std::isnan(w[0]));
}

TEST(ReferenceAttention, HandComputedCase)
{
    // Two rows; scores 1 and 0, weights e/(e+1) and 1/(e+1).
    const Matrix key = Matrix::fromRows({{1.0f, 0.0f}, {0.0f, 0.0f}});
    const Matrix value =
        Matrix::fromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
    const Vector query{1.0f, 0.0f};
    const AttentionResult r = referenceAttention(key, value, query);

    const float w0 =
        std::exp(1.0f) / (std::exp(1.0f) + std::exp(0.0f));
    EXPECT_NEAR(r.weights[0], w0, 1e-6f);
    EXPECT_NEAR(r.weights[1], 1.0f - w0, 1e-6f);
    EXPECT_NEAR(r.output[0], w0 * 1.0f + (1.0f - w0) * 3.0f, 1e-5f);
    EXPECT_NEAR(r.output[1], w0 * 2.0f + (1.0f - w0) * 4.0f, 1e-5f);
    EXPECT_FLOAT_EQ(r.scores[0], 1.0f);
    EXPECT_FLOAT_EQ(r.scores[1], 0.0f);
}

TEST(ReferenceAttention, SingleRowReturnsThatValueRow)
{
    const Matrix key = Matrix::fromRows({{0.5f, -0.5f}});
    const Matrix value = Matrix::fromRows({{7.0f, -3.0f}});
    const AttentionResult r =
        referenceAttention(key, value, {1.0f, 1.0f});
    EXPECT_FLOAT_EQ(r.weights[0], 1.0f);
    EXPECT_FLOAT_EQ(r.output[0], 7.0f);
    EXPECT_FLOAT_EQ(r.output[1], -3.0f);
}

TEST(SubsetAttention, FullSetMatchesReference)
{
    Rng rng(700);
    const std::size_t n = 12;
    const std::size_t d = 8;
    Matrix key(n, d);
    Matrix value(n, d);
    Vector query(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    const AttentionResult a = referenceAttention(key, value, query);
    const AttentionResult b = subsetAttention(key, value, query, all);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
}

TEST(SubsetAttention, SubsetNormalizesOverSubsetOnly)
{
    const Matrix key =
        Matrix::fromRows({{1.0f}, {2.0f}, {3.0f}});
    const Matrix value =
        Matrix::fromRows({{1.0f}, {10.0f}, {100.0f}});
    const AttentionResult r =
        subsetAttention(key, value, {1.0f}, {0, 2});
    // Row 1 excluded entirely.
    EXPECT_FLOAT_EQ(r.weights[1], 0.0f);
    EXPECT_NEAR(r.weights[0] + r.weights[2], 1.0f, 1e-6f);
    // Output is a convex combination of rows 0 and 2 only.
    EXPECT_GT(r.output[0], 1.0f);
    EXPECT_LT(r.output[0], 100.0f);
}

TEST(SubsetAttention, ResultBookkeeping)
{
    const Matrix key = Matrix::fromRows({{1.0f}, {2.0f}});
    const Matrix value = Matrix::fromRows({{1.0f}, {2.0f}});
    const AttentionResult r =
        subsetAttention(key, value, {1.0f}, {1});
    EXPECT_EQ(r.candidates, (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(r.kept, (std::vector<std::uint32_t>{1}));
    EXPECT_FLOAT_EQ(r.scores[1], 2.0f);
    EXPECT_FLOAT_EQ(r.scores[0], 0.0f);
}

/** Property: output is always inside the convex hull of value rows. */
TEST(ReferenceAttention, OutputInConvexHull)
{
    Rng rng(800);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 30));
        const std::size_t d = 4;
        Matrix key(n, d);
        Matrix value(n, d);
        Vector query(d);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < d; ++c) {
                key(r, c) = static_cast<float>(rng.normal());
                value(r, c) = static_cast<float>(rng.normal());
            }
        }
        for (auto &x : query)
            x = static_cast<float>(rng.normal());
        const AttentionResult res =
            referenceAttention(key, value, query);
        for (std::size_t c = 0; c < d; ++c) {
            float lo = value(0, c);
            float hi = value(0, c);
            for (std::size_t r = 1; r < n; ++r) {
                lo = std::min(lo, value(r, c));
                hi = std::max(hi, value(r, c));
            }
            EXPECT_GE(res.output[c], lo - 1e-4f);
            EXPECT_LE(res.output[c], hi + 1e-4f);
        }
    }
}

}  // namespace
}  // namespace a3
