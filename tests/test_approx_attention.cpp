/**
 * @file
 * Tests for the end-to-end approximate attention orchestrator.
 */

#include <gtest/gtest.h>

#include "attention/approx_attention.hpp"
#include "attention/reference.hpp"
#include "util/random.hpp"
#include "workloads/embedding.hpp"

namespace a3 {
namespace {

struct RandomTask
{
    Matrix key;
    Matrix value;
    Vector query;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    t.query.resize(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    for (auto &x : t.query)
        x = static_cast<float>(rng.normal());
    return t;
}

TEST(ApproxAttention, ExactConfigMatchesReferenceBitwise)
{
    Rng rng(4000);
    const RandomTask t = makeTask(rng, 25, 8);
    const ApproxAttention engine(t.key, t.value, ApproxConfig::exact());
    const AttentionResult approx = engine.run(t.query);
    const AttentionResult exact =
        referenceAttention(t.key, t.value, t.query);
    EXPECT_EQ(approx.output, exact.output);
    EXPECT_EQ(approx.weights, exact.weights);
    EXPECT_EQ(approx.candidates.size(), 25u);
    EXPECT_EQ(approx.kept.size(), 25u);
}

TEST(ApproxAttention, OutputMatchesSubsetAttentionOfKeptRows)
{
    Rng rng(4001);
    const RandomTask t = makeTask(rng, 40, 16);
    const ApproxAttention engine(t.key, t.value,
                                 ApproxConfig::conservative());
    const AttentionResult approx = engine.run(t.query);
    ASSERT_FALSE(approx.kept.empty());
    const AttentionResult subset =
        subsetAttention(t.key, t.value, t.query, approx.kept);
    EXPECT_EQ(approx.output, subset.output);
}

TEST(ApproxAttention, KeptIsSubsetOfCandidates)
{
    Rng rng(4002);
    for (int trial = 0; trial < 20; ++trial) {
        const RandomTask t = makeTask(rng, 30, 8);
        const ApproxAttention engine(t.key, t.value,
                                     ApproxConfig::aggressive());
        const AttentionResult r = engine.run(t.query);
        for (std::uint32_t row : r.kept) {
            EXPECT_TRUE(std::find(r.candidates.begin(),
                                  r.candidates.end(),
                                  row) != r.candidates.end());
        }
    }
}

TEST(ApproxAttention, WeightsZeroOutsideKeptAndSumToOne)
{
    Rng rng(4003);
    const RandomTask t = makeTask(rng, 50, 8);
    const ApproxAttention engine(t.key, t.value,
                                 ApproxConfig::conservative());
    const AttentionResult r = engine.run(t.query);
    float sum = 0.0f;
    for (std::size_t row = 0; row < 50; ++row) {
        const bool kept =
            std::find(r.kept.begin(), r.kept.end(),
                      static_cast<std::uint32_t>(row)) != r.kept.end();
        if (!kept)
            EXPECT_FLOAT_EQ(r.weights[row], 0.0f);
        sum += r.weights[row];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(ApproxAttention, NeverReturnsEmptyKeptSet)
{
    // Anti-aligned query: greedy scores are all non-positive, the
    // degenerate-fallback path must still produce one row.
    Matrix key = Matrix::fromRows(
        {{1.0f, 1.0f}, {2.0f, 0.5f}, {0.5f, 2.0f}});
    Matrix value = Matrix::fromRows(
        {{1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 1.0f}});
    ApproxConfig cfg = ApproxConfig::aggressive();
    const ApproxAttention engine(key, value, cfg);
    const AttentionResult r = engine.run({-1.0f, -1.0f});
    EXPECT_EQ(r.candidates.size(), 1u);
    EXPECT_EQ(r.kept.size(), 1u);
    float sum = 0.0f;
    for (float w : r.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(ApproxAttention, LargeMTinyThresholdApproachesExact)
{
    Rng rng(4004);
    const RandomTask t = makeTask(rng, 20, 8);
    ApproxConfig cfg;
    cfg.mAbsolute = 20;              // M = n, the paper's upper sweep
    cfg.thresholdPercent = 1e-9;     // keep everything scored
    cfg.skipHeuristic = false;
    const ApproxAttention engine(t.key, t.value, cfg);
    const AttentionResult approx = engine.run(t.query);
    const AttentionResult exact =
        referenceAttention(t.key, t.value, t.query);
    // Candidate selection still drops rows with non-positive greedy
    // score; those rows carry small (not exactly zero) weight in the
    // exact result, so allow a modest deviation.
    EXPECT_LT(maxAbsDiff(approx.output, exact.output), 0.1f);
}

TEST(ApproxConfig, IterationsClampToRowCount)
{
    // Regression: an absolute M beyond n used to drive greedy search
    // past the row count; both paths now clamp to [1, n].
    ApproxConfig abs;
    abs.mAbsolute = 1000;
    EXPECT_EQ(abs.iterationsFor(32), 32u);
    EXPECT_EQ(abs.iterationsFor(1), 1u);
    abs.mAbsolute = 7;
    EXPECT_EQ(abs.iterationsFor(32), 7u);

    ApproxConfig frac;
    frac.mFraction = 3.0;
    EXPECT_EQ(frac.iterationsFor(16), 16u);
    frac.mFraction = 0.01;
    EXPECT_EQ(frac.iterationsFor(16), 1u);
}

TEST(ApproxAttention, OverlargeAbsoluteMRunsLikeFullFraction)
{
    Rng rng(4007);
    const RandomTask t = makeTask(rng, 24, 8);
    ApproxConfig clamped;
    clamped.mAbsolute = 24 * 100;
    ApproxConfig full;
    full.mFraction = 1.0;
    const ApproxAttention a(t.key, t.value, clamped);
    const ApproxAttention b(t.key, t.value, full);
    const AttentionResult ra = a.run(t.query);
    const AttentionResult rb = b.run(t.query);
    EXPECT_EQ(ra.iterations, 24u);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.candidates, rb.candidates);
    EXPECT_EQ(ra.kept, rb.kept);
}

TEST(ApproxAttention, ExtremeThresholdDegradesToTopCandidate)
{
    // Regression: a post-scoring threshold beyond 100% produces a
    // negative score gap that rejects every candidate; the flow must
    // keep the top-scoring one instead of asserting on an empty
    // softmax subset.
    Rng rng(4008);
    const RandomTask t = makeTask(rng, 30, 8);
    ApproxConfig cfg = ApproxConfig::conservative();
    cfg.thresholdPercent = 250.0;
    const ApproxAttention engine(t.key, t.value, cfg);
    const AttentionResult r = engine.run(t.query);
    ASSERT_EQ(r.kept.size(), 1u);
    EXPECT_FLOAT_EQ(r.weights[r.kept[0]], 1.0f);
    // The survivor is the top-scoring candidate.
    for (std::uint32_t row : r.candidates)
        EXPECT_LE(r.scores[row], r.scores[r.kept[0]]);
}

TEST(ApproxAttention, PlantedRelevantRowSurvivesConservative)
{
    Rng rng(4005);
    EmbeddingParams params;
    int survived = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        const EmbeddingEpisode ep =
            generateEpisode(rng, params, 24, 1);
        const ApproxAttention engine(ep.key, ep.value,
                                     ApproxConfig::conservative());
        const AttentionResult r = engine.run(ep.query);
        survived += std::find(r.kept.begin(), r.kept.end(),
                              ep.relevantRows[0]) != r.kept.end();
    }
    // The conservative preset loses ~1% accuracy in the paper; allow a
    // loose bound here.
    EXPECT_GE(survived, trials * 3 / 4);
}

TEST(ApproxAttention, IterationCountRespectsConfig)
{
    Rng rng(4006);
    const RandomTask t = makeTask(rng, 32, 8);
    ApproxConfig cfg;
    cfg.mFraction = 0.25;
    const ApproxAttention engine(t.key, t.value, cfg);
    const AttentionResult r = engine.run(t.query);
    EXPECT_EQ(r.iterations, 8u);

    ApproxConfig abs;
    abs.mAbsolute = 5;
    const ApproxAttention engine2(t.key, t.value, abs);
    EXPECT_EQ(engine2.run(t.query).iterations, 5u);
}

TEST(ApproxConfig, PresetsMatchPaper)
{
    const ApproxConfig cons = ApproxConfig::conservative();
    EXPECT_DOUBLE_EQ(cons.mFraction, 0.5);
    EXPECT_DOUBLE_EQ(cons.thresholdPercent, 5.0);
    const ApproxConfig aggr = ApproxConfig::aggressive();
    EXPECT_DOUBLE_EQ(aggr.mFraction, 0.125);
    EXPECT_DOUBLE_EQ(aggr.thresholdPercent, 10.0);
    EXPECT_EQ(cons.iterationsFor(320), 160u);
    EXPECT_EQ(aggr.iterationsFor(320), 40u);
}

TEST(ApproxConfig, StrSummaries)
{
    EXPECT_EQ(ApproxConfig::conservative().str(),
              "ApproxConfig{M=0.5n, T=5%}");
    EXPECT_EQ(ApproxConfig::exact().str(), "ApproxConfig{M=off, T=off}");
}

}  // namespace
}  // namespace a3
