/**
 * @file
 * Unit tests for the dense matrix/vector substrate.
 */

#include <gtest/gtest.h>

#include "tensor/matrix.hpp"

namespace a3 {
namespace {

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ZeroInitialized)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m(r, c), 0.0f);
}

TEST(Matrix, FromRowsRoundTrip)
{
    const Matrix m = Matrix::fromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
    EXPECT_EQ(m.at(0, 0), 1.0f);
    EXPECT_EQ(m.at(0, 1), 2.0f);
    EXPECT_EQ(m.at(1, 0), 3.0f);
    EXPECT_EQ(m.at(1, 1), 4.0f);
}

TEST(Matrix, RowSpanViewsStorage)
{
    Matrix m = Matrix::fromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
    auto row = m.row(1);
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0], 3.0f);
    row[1] = 9.0f;
    EXPECT_EQ(m(1, 1), 9.0f);
}

TEST(Matrix, ColumnCopies)
{
    const Matrix m =
        Matrix::fromRows({{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}});
    const Vector col = m.column(1);
    EXPECT_EQ(col, (Vector{2.0f, 4.0f, 6.0f}));
}

TEST(Matrix, MatvecMatchesHandComputation)
{
    const Matrix m = Matrix::fromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
    const Vector out = m.matvec({1.0f, -1.0f});
    EXPECT_EQ(out, (Vector{-1.0f, -1.0f}));
}

TEST(Matrix, TransposeInvolution)
{
    const Matrix m =
        Matrix::fromRows({{1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}});
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(2, 1), 6.0f);
    EXPECT_TRUE(t.transposed() == m);
}

TEST(Matrix, EqualityIsElementwise)
{
    Matrix a = Matrix::fromRows({{1.0f}});
    Matrix b = Matrix::fromRows({{1.0f}});
    EXPECT_TRUE(a == b);
    b(0, 0) = 2.0f;
    EXPECT_FALSE(a == b);
}

TEST(Dot, MatchesHandComputation)
{
    Vector a{1.0f, 2.0f, 3.0f};
    Vector b{4.0f, -5.0f, 6.0f};
    EXPECT_FLOAT_EQ(
        dot(std::span<const float>(a), std::span<const float>(b)),
        12.0f);
}

TEST(MaxAbsDiff, FindsWorstElement)
{
    EXPECT_FLOAT_EQ(maxAbsDiff({1.0f, 2.0f}, {1.5f, 1.0f}), 1.0f);
    EXPECT_FLOAT_EQ(maxAbsDiff({1.0f}, {1.0f}), 0.0f);
}

}  // namespace
}  // namespace a3
