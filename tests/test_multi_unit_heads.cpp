/**
 * @file
 * Tests for the independent-task cluster pattern (Section III-C:
 * "use multiple copies of our A3 units for a different key, value
 * matrices sets" — e.g. one transformer attention head per unit).
 */

#include <gtest/gtest.h>

#include "sim/multi_unit.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

std::pair<Matrix, Matrix>
randomTask(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix key(n, d);
    Matrix value(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    return {std::move(key), std::move(value)};
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

SimConfig
config(std::size_t n)
{
    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    return cfg;
}

TEST(ClusterHeads, IndependentTasksRunConcurrently)
{
    Rng rng(9700);
    const std::size_t heads = 4;
    const std::size_t n = 64;
    A3Cluster cluster(config(n), heads);

    std::vector<std::pair<Matrix, Matrix>> tasks;
    std::vector<std::vector<Vector>> queries(heads);
    for (std::size_t h = 0; h < heads; ++h) {
        tasks.push_back(randomTask(rng, n, 64));
        for (int q = 0; q < 6; ++q)
            queries[h].push_back(randomQuery(rng, 64));
    }
    cluster.loadTasks(tasks);
    const ClusterStats stats = cluster.runPerUnit(queries);

    EXPECT_EQ(stats.queries, heads * 6);
    for (std::uint64_t q : stats.perUnitQueries)
        EXPECT_EQ(q, 6u);
    // Concurrent heads: makespan equals one head's serial time,
    // not the sum over heads: 3(n+9) fill + 5(n+9) steady.
    EXPECT_EQ(stats.makespan, (3 + 6 - 1) * (n + 9));
}

TEST(ClusterHeads, PerHeadResultsMatchSoloUnits)
{
    Rng rng(9701);
    const std::size_t heads = 3;
    const std::size_t n = 32;
    A3Cluster cluster(config(n), heads);
    std::vector<std::pair<Matrix, Matrix>> tasks;
    std::vector<std::vector<Vector>> queries(heads);
    for (std::size_t h = 0; h < heads; ++h) {
        tasks.push_back(randomTask(rng, n, 64));
        queries[h].push_back(randomQuery(rng, 64));
    }
    cluster.loadTasks(tasks);
    cluster.runPerUnit(queries);

    for (std::size_t h = 0; h < heads; ++h) {
        A3Accelerator solo(config(n));
        solo.loadTask(tasks[h].first, tasks[h].second);
        solo.submitQuery(queries[h][0]);
        solo.drain();
        const auto expected = solo.popOutput();
        ASSERT_TRUE(expected.has_value());
        const AttentionResult fromCluster =
            cluster.unit(h).datapath().run(
                tasks[h].first, tasks[h].second, queries[h][0]);
        EXPECT_EQ(fromCluster.output, expected->result.output);
    }
}

TEST(ClusterHeads, TaskCountMustMatchUnits)
{
    Rng rng(9702);
    A3Cluster cluster(config(16), 2);
    std::vector<std::pair<Matrix, Matrix>> tasks;
    tasks.push_back(randomTask(rng, 16, 64));
    EXPECT_DEATH(cluster.loadTasks(tasks), "one task per unit");
}

TEST(ClusterHeads, QueryListCountMustMatchUnits)
{
    Rng rng(9703);
    A3Cluster cluster(config(16), 2);
    cluster.loadTask(randomTask(rng, 16, 64).first,
                     randomTask(rng, 16, 64).second);
    std::vector<std::vector<Vector>> queries(1);
    queries[0].push_back(randomQuery(rng, 64));
    EXPECT_DEATH(cluster.runPerUnit(queries),
                 "one query list per unit");
}

}  // namespace
}  // namespace a3
