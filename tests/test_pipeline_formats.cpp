/**
 * @file
 * Tests for the Section III-B per-stage bitwidth derivation.
 */

#include <gtest/gtest.h>

#include "fixed/pipeline_formats.hpp"
#include "fixed/value.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(CeilLog2, KnownValues)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(64), 6);
    EXPECT_EQ(ceilLog2(65), 7);
    EXPECT_EQ(ceilLog2(320), 9);
}

TEST(PipelineFormats, PaperConfiguration)
{
    // i = f = 4, n = 320, d = 64 (Section VI-D).
    const PipelineFormats pf = PipelineFormats::derive(4, 4, 320, 64);
    EXPECT_EQ(pf.input.str(), "Q4.4");
    EXPECT_EQ(pf.product.str(), "Q8.8");
    EXPECT_EQ(pf.dotProduct.str(), "Q14.8");   // 2i + log2(64) = 14
    EXPECT_EQ(pf.shiftedDot.str(), "Q15.8");
    EXPECT_EQ(pf.score.str(), "Q0.8");
    EXPECT_EQ(pf.expSum.str(), "Q9.8");        // ceil(log2 320) = 9
    EXPECT_EQ(pf.weight.str(), "Q0.8");
    EXPECT_EQ(pf.output.str(), "Q13.12");      // i + log2 n, 3f
}

/**
 * Property: the derived widths admit no overflow for worst-case
 * inputs — d products of extreme values summed, max-subtraction,
 * score accumulation over n rows.
 */
class NoOverflowProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(NoOverflowProperty, WorstCaseFitsEveryStage)
{
    const auto [i, f, n, d] = GetParam();
    const PipelineFormats pf = PipelineFormats::derive(
        i, f, static_cast<std::size_t>(n), static_cast<std::size_t>(d));

    // Worst-case product magnitude: minRaw * minRaw.
    const FixedFormat in = pf.input;
    const std::int64_t worstProduct = in.minRaw() * in.minRaw();
    EXPECT_TRUE(pf.product.fits(worstProduct));
    EXPECT_TRUE(pf.product.fits(-worstProduct + 1));

    // Worst-case dot product: d extreme products summed.
    const std::int64_t worstDot = worstProduct * d;
    EXPECT_TRUE(pf.dotProduct.fits(worstDot))
        << "i=" << i << " f=" << f << " d=" << d;
    const std::int64_t worstNegDot = (in.minRaw() * in.maxRaw()) * d;
    EXPECT_TRUE(pf.dotProduct.fits(worstNegDot));

    // Max subtraction: most negative shifted value.
    EXPECT_TRUE(pf.shiftedDot.fits(worstNegDot - worstDot));

    // expsum: n scores of at most (1 - 2^-2f) each.
    const std::int64_t maxScore = pf.score.maxRaw();
    EXPECT_TRUE(pf.expSum.fits(maxScore * n));

    // Output: n weighted values; weight <= 1, value within input range.
    const std::int64_t worstOut =
        pf.weight.maxRaw() * in.minRaw() * n;
    EXPECT_TRUE(pf.output.fits(worstOut))
        << "i=" << i << " f=" << f << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NoOverflowProperty,
    ::testing::Combine(::testing::Values(2, 4, 6),       // i
                       ::testing::Values(2, 4, 6),       // f
                       ::testing::Values(20, 186, 320),  // n
                       ::testing::Values(16, 64)));      // d

TEST(PipelineFormats, RandomDataNeverOverflowsDotStage)
{
    Rng rng(600);
    const PipelineFormats pf = PipelineFormats::derive(4, 4, 320, 64);
    for (int trial = 0; trial < 200; ++trial) {
        std::int64_t sum = 0;
        for (int j = 0; j < 64; ++j) {
            const std::int64_t k =
                rng.uniformInt(pf.input.minRaw(), pf.input.maxRaw());
            const std::int64_t q =
                rng.uniformInt(pf.input.minRaw(), pf.input.maxRaw());
            sum += k * q;
        }
        EXPECT_TRUE(pf.dotProduct.fits(sum));
    }
}

}  // namespace
}  // namespace a3
