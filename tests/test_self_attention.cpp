/**
 * @file
 * Tests for the self-attention layer and zero-padding (Section III-C).
 */

#include <gtest/gtest.h>

#include "attention/reference.hpp"
#include "attention/self_attention.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

TEST(SelfAttention, ExactMatchesPerTokenReference)
{
    Rng rng(9200);
    const Matrix key = randomMatrix(rng, 12, 8);
    const Matrix value = randomMatrix(rng, 12, 8);
    const Matrix queries = randomMatrix(rng, 12, 8);
    const SelfAttentionResult r =
        selfAttention(key, value, queries, ApproxConfig::exact());
    ASSERT_EQ(r.outputs.rows(), 12u);
    for (std::size_t t = 0; t < 12; ++t) {
        Vector q(queries.row(t).begin(), queries.row(t).end());
        const AttentionResult expected =
            referenceAttention(key, value, q);
        for (std::size_t j = 0; j < 8; ++j)
            EXPECT_EQ(r.outputs(t, j), expected.output[j]);
    }
}

TEST(SelfAttention, ApproxStatsAggregated)
{
    Rng rng(9201);
    const Matrix key = randomMatrix(rng, 40, 16);
    const Matrix value = randomMatrix(rng, 40, 16);
    const Matrix queries = randomMatrix(rng, 40, 16);
    const SelfAttentionResult r = selfAttention(
        key, value, queries, ApproxConfig::conservative());
    EXPECT_EQ(r.perToken.size(), 40u);
    EXPECT_GT(r.avgCandidates, 0.0);
    EXPECT_LE(r.avgCandidates, 40.0);
    EXPECT_LE(r.avgKept, r.avgCandidates);
}

TEST(ZeroPad, PaddingIsExactForAttention)
{
    // Section III-C: a datapath sized for a larger d serves smaller
    // embeddings via zero-padding with identical results.
    Rng rng(9202);
    const Matrix key = randomMatrix(rng, 10, 24);
    const Matrix value = randomMatrix(rng, 10, 24);
    Vector query(24);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    const AttentionResult narrow =
        referenceAttention(key, value, query);
    const AttentionResult wide = referenceAttention(
        zeroPadColumns(key, 64), zeroPadColumns(value, 64),
        zeroPad(query, 64));
    for (std::size_t j = 0; j < 24; ++j)
        EXPECT_FLOAT_EQ(wide.output[j], narrow.output[j]);
    for (std::size_t j = 24; j < 64; ++j)
        EXPECT_FLOAT_EQ(wide.output[j], 0.0f);
    EXPECT_EQ(wide.weights, narrow.weights);
}

TEST(ZeroPad, PaddingPreservesApproxSelection)
{
    Rng rng(9203);
    const Matrix key = randomMatrix(rng, 24, 16);
    const Matrix value = randomMatrix(rng, 24, 16);
    Vector query(16);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    const ApproxAttention narrow(key, value,
                                 ApproxConfig::conservative());
    const ApproxAttention wide(zeroPadColumns(key, 32),
                               zeroPadColumns(value, 32),
                               ApproxConfig::conservative());
    const AttentionResult a = narrow.run(query);
    const AttentionResult b = wide.run(zeroPad(query, 32));
    // Padding columns produce zero products, which the greedy search
    // never accumulates (only strictly positive/negative products
    // count), so the candidate set is unchanged.
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
}

TEST(ZeroPad, IdentityWhenAlreadyWide)
{
    Rng rng(9204);
    const Matrix m = randomMatrix(rng, 3, 5);
    EXPECT_TRUE(zeroPadColumns(m, 5) == m);
    const Vector v{1.0f, 2.0f};
    EXPECT_EQ(zeroPad(v, 2), v);
}

}  // namespace
}  // namespace a3
