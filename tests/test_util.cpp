/**
 * @file
 * Unit tests for the utility substrate: RNG, stats, tables, CSV.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace a3 {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all 7 values reached
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(13);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng rng(17);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.02);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters)
{
    Rng rng(19);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(stat.mean(), 5.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = values;
    rng.shuffle(values);
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.split();
    // The child must not replay the parent's stream.
    Rng parentCopy(31);
    (void)parentCopy();  // consume the split draw
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (child() == parentCopy());
    EXPECT_LT(equal, 4);
}

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all;
    RunningStat left;
    RunningStat right;
    Rng rng(37);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal();
        all.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a;
    a.add(1.0);
    RunningStat b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
}

TEST(Histogram, CumulativeFraction)
{
    Histogram h(0.0, 4.0, 4);
    for (double v : {0.5, 1.5, 2.5, 3.5})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.25);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(3), 1.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(LatencyReservoir, RetainsLastWindowDeterministically)
{
    LatencyReservoir reservoir(4);
    EXPECT_EQ(reservoir.capacity(), 4u);
    // Empty reservoir: well-defined zeros, no assert.
    EXPECT_EQ(reservoir.size(), 0u);
    EXPECT_EQ(reservoir.count(), 0u);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.99), 0.0);

    for (double s = 1.0; s <= 6.0; s += 1.0)
        reservoir.add(s);
    // Sliding window: 1 and 2 were evicted, 3..6 retained; count
    // still reflects every sample ever recorded.
    EXPECT_EQ(reservoir.size(), 4u);
    EXPECT_EQ(reservoir.count(), 6u);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(1.0), 6.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.5), 4.5);
    // Multi-quantile read over one sorted copy matches per-fraction
    // reads.
    const double fractions[3] = {0.0, 0.5, 1.0};
    double out[3] = {-1.0, -1.0, -1.0};
    reservoir.percentiles(fractions, 3, out);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 4.5);
    EXPECT_DOUBLE_EQ(out[2], 6.0);

    reservoir.clear();
    EXPECT_EQ(reservoir.size(), 0u);
    EXPECT_EQ(reservoir.count(), 0u);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.5), 0.0);
    reservoir.add(7.0);
    EXPECT_DOUBLE_EQ(reservoir.percentile(0.5), 7.0);
}

/**
 * The serving tier records latencies from drain threads while a
 * monitoring thread reads percentiles: the reservoir's internal
 * lock must keep both sides consistent (no torn windows, no lost
 * samples). Run under TSan in CI; the invariant checks here catch
 * logic races even without it.
 */
TEST(LatencyReservoir, ConcurrentRecordAndPercentileReads)
{
    constexpr std::size_t kWriters = 4;
    constexpr std::size_t kSamplesPerWriter = 2000;
    LatencyReservoir reservoir(256);
    std::atomic<bool> stop{false};

    std::thread reader([&reservoir, &stop] {
        const double fractions[3] = {0.50, 0.95, 0.99};
        double out[3];
        while (!stop.load(std::memory_order_relaxed)) {
            reservoir.percentiles(fractions, 3, out);
            // Samples are drawn from [0, 1], so any consistent
            // window keeps the percentiles in range and ordered.
            EXPECT_GE(out[0], 0.0);
            EXPECT_LE(out[2], 1.0);
            EXPECT_LE(out[0], out[1]);
            EXPECT_LE(out[1], out[2]);
            EXPECT_LE(reservoir.size(), reservoir.capacity());
        }
    });

    std::vector<std::thread> writers;
    for (std::size_t w = 0; w < kWriters; ++w) {
        writers.emplace_back([&reservoir, w] {
            Rng rng(1000 + w);
            for (std::size_t i = 0; i < kSamplesPerWriter; ++i)
                reservoir.add(rng.uniform());
        });
    }
    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    // Every sample landed exactly once and the window stayed full.
    EXPECT_EQ(reservoir.count(), kWriters * kSamplesPerWriter);
    EXPECT_EQ(reservoir.size(), reservoir.capacity());
    EXPECT_GE(reservoir.percentile(0.5), 0.0);
    EXPECT_LE(reservoir.percentile(0.5), 1.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::ratio(2.5), "2.50x");
    EXPECT_EQ(Table::percent(0.831), "83.1%");
}

TEST(Csv, QuotesSpecialCharacters)
{
    const std::string path = "/tmp/a3_test_csv.csv";
    {
        CsvWriter w(path);
        w.writeRow({"a", "b,c", "d\"e"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,\"b,c\",\"d\"\"e\"");
    std::remove(path.c_str());
}

TEST(Logging, LevelGatesOutput)
{
    // Only check the level round-trips; output itself goes to stderr.
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

}  // namespace
}  // namespace a3
