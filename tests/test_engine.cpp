/**
 * @file
 * Tests for the batched AttentionEngine and its thread pool: batched
 * results must be bit-identical to sequential per-query runs, result
 * order must be deterministic for any thread count, and the edge
 * cases (empty batch, single query) must hold.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "attention/approx_attention.hpp"
#include "attention/backend.hpp"
#include "attention/multi_hop.hpp"
#include "attention/quantized.hpp"
#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

struct TestTask
{
    Matrix key;
    Matrix value;
    std::vector<Vector> queries;
};

TestTask
makeTask(std::uint64_t seed, std::size_t n, std::size_t d,
         std::size_t queryCount)
{
    Rng rng(seed);
    TestTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    t.queries.resize(queryCount);
    for (auto &q : t.queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }
    return t;
}

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        const std::size_t count = 1000;
        std::vector<std::atomic<int>> hits(count);
        pool.parallelFor(count, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(4);
    for (int job = 0; job < 50; ++job) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(17, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 17u * 16u / 2u);
    }
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> inner{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) {
            inner.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner.load(), 64u);
}

TEST(ThreadPool, EmptyJobReturnsImmediately)
{
    ThreadPool pool(4);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

// --- Stress shapes, exercised under TSan by the CI sanitizer job. ---

TEST(ThreadPoolStress, RepeatedBackToBackJobs)
{
    // Thousands of tiny jobs in a row shake out wake/sleep races
    // between the generation counter and the condition variables.
    ThreadPool pool(8);
    std::atomic<std::uint64_t> total{0};
    std::uint64_t expected = 0;
    for (int job = 0; job < 2000; ++job) {
        const std::size_t count = static_cast<std::size_t>(job % 7);
        expected += count * (count + 1) / 2;
        pool.parallelFor(count, [&](std::size_t i) {
            total.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolStress, SingleLanePoolRunsEverythingInline)
{
    // A 1-lane pool has no background workers: every index runs on
    // the calling thread, in order, with no synchronization to race.
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    for (int job = 0; job < 100; ++job) {
        pool.parallelFor(5, [&](std::size_t i) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(i);
        });
    }
    ASSERT_EQ(order.size(), 500u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i % 5);
}

TEST(ThreadPoolStress, NestedDispatchFromInsideJobs)
{
    // Nested parallelFor from inside a job must run inline on the
    // dispatching lane rather than deadlock on the serialization
    // lock — repeatedly, from every lane, two levels deep.
    ThreadPool pool(4);
    std::atomic<std::size_t> leaves{0};
    for (int job = 0; job < 50; ++job) {
        pool.parallelFor(8, [&](std::size_t) {
            pool.parallelFor(4, [&](std::size_t) {
                pool.parallelFor(2, [&](std::size_t) {
                    leaves.fetch_add(1, std::memory_order_relaxed);
                });
            });
        });
    }
    EXPECT_EQ(leaves.load(), 50u * 8u * 4u * 2u);
}

/** All four backends answer through the same polymorphic interface. */
TEST(AttentionBackend, FactoryCoversEveryKind)
{
    const TestTask t = makeTask(100, 24, 16, 1);
    for (EngineKind kind :
         {EngineKind::ExactFloat, EngineKind::ApproxFloat,
          EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        EngineConfig cfg;
        cfg.kind = kind;
        const auto backend = makeBackend(cfg, t.key, t.value);
        ASSERT_NE(backend, nullptr) << engineKindName(kind);
        EXPECT_EQ(backend->rows(), 24u);
        EXPECT_EQ(backend->dims(), 16u);
        EXPECT_FALSE(backend->name().empty());
        const AttentionResult r = backend->run(t.queries[0]);
        EXPECT_EQ(r.output.size(), 16u);
        EXPECT_EQ(r.weights.size(), 24u);
    }
}

TEST(AttentionBackend, BoundQuantizedMatchesUnboundDatapath)
{
    const TestTask t = makeTask(200, 20, 8, 3);
    const QuantizedAttention bound(t.key, t.value, 4, 4);
    EXPECT_TRUE(bound.bound());
    const QuantizedAttention datapath(4, 4, 20, 8);
    for (const Vector &q : t.queries) {
        expectBitIdentical(bound.run(q),
                           datapath.run(t.key, t.value, q));
    }
}

TEST(AttentionEngine, BatchedBitIdenticalToSequentialAllBackends)
{
    const TestTask t = makeTask(300, 40, 16, 24);
    for (EngineKind kind :
         {EngineKind::ExactFloat, EngineKind::ApproxFloat,
          EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        EngineConfig cfg;
        cfg.kind = kind;
        const auto backend = makeBackend(cfg, t.key, t.value);

        std::vector<AttentionResult> sequential;
        sequential.reserve(t.queries.size());
        for (const Vector &q : t.queries)
            sequential.push_back(backend->run(q));

        const AttentionEngine engine(4);
        const std::vector<AttentionResult> batched =
            engine.run(*backend, t.queries);
        ASSERT_EQ(batched.size(), sequential.size())
            << engineKindName(kind);
        for (std::size_t i = 0; i < batched.size(); ++i) {
            SCOPED_TRACE(std::string(engineKindName(kind)) +
                         " query " + std::to_string(i));
            expectBitIdentical(batched[i], sequential[i]);
        }
    }
}

TEST(AttentionEngine, DeterministicOrderingAcrossThreadCounts)
{
    const TestTask t = makeTask(400, 64, 16, 48);
    const ApproxAttention backend(t.key, t.value,
                                  ApproxConfig::conservative());

    const AttentionEngine one(1);
    const std::vector<AttentionResult> reference =
        one.run(backend, t.queries);
    for (std::size_t threads : {2u, 8u}) {
        const AttentionEngine engine(threads);
        EXPECT_EQ(engine.threads(), threads);
        // Repeat to shake out scheduling-dependent orderings.
        for (int repeat = 0; repeat < 3; ++repeat) {
            const std::vector<AttentionResult> batched =
                engine.run(backend, t.queries);
            ASSERT_EQ(batched.size(), reference.size());
            for (std::size_t i = 0; i < batched.size(); ++i) {
                SCOPED_TRACE("threads " + std::to_string(threads) +
                             " query " + std::to_string(i));
                expectBitIdentical(batched[i], reference[i]);
            }
        }
    }
}

TEST(AttentionEngine, EmptyBatch)
{
    const TestTask t = makeTask(500, 12, 8, 0);
    const ApproxAttention backend(t.key, t.value,
                                  ApproxConfig::conservative());
    const AttentionEngine engine(4);
    EXPECT_TRUE(engine.run(backend, {}).empty());
    EXPECT_TRUE(engine.runGroups({}).empty());
}

TEST(AttentionEngine, SingleQueryBatch)
{
    const TestTask t = makeTask(600, 12, 8, 1);
    const ApproxAttention backend(t.key, t.value,
                                  ApproxConfig::conservative());
    const AttentionEngine engine(8);
    const auto batched = engine.run(backend, t.queries);
    ASSERT_EQ(batched.size(), 1u);
    expectBitIdentical(batched[0], backend.run(t.queries[0]));
}

TEST(AttentionEngine, RequestGroupsKeepPerGroupOrder)
{
    // Three sequences (groups) with different shapes and backends —
    // the multi-sequence / multi-head pattern.
    const TestTask a = makeTask(700, 16, 8, 5);
    const TestTask b = makeTask(701, 32, 8, 2);
    const TestTask c = makeTask(702, 24, 8, 7);
    const ApproxAttention backendA(a.key, a.value,
                                   ApproxConfig::conservative());
    const ReferenceAttention backendB(b.key, b.value);
    const QuantizedAttention backendC(c.key, c.value, 4, 4);

    std::vector<AttentionRequestGroup> groups;
    groups.push_back({&backendA, a.queries});
    groups.push_back({&backendB, b.queries});
    groups.push_back({&backendC, c.queries});

    const AttentionEngine engine(8);
    const auto results = engine.runGroups(groups);
    ASSERT_EQ(results.size(), 3u);
    ASSERT_EQ(results[0].size(), 5u);
    ASSERT_EQ(results[1].size(), 2u);
    ASSERT_EQ(results[2].size(), 7u);
    for (std::size_t i = 0; i < a.queries.size(); ++i)
        expectBitIdentical(results[0][i], backendA.run(a.queries[i]));
    for (std::size_t i = 0; i < b.queries.size(); ++i)
        expectBitIdentical(results[1][i], backendB.run(b.queries[i]));
    for (std::size_t i = 0; i < c.queries.size(); ++i)
        expectBitIdentical(results[2][i], backendC.run(c.queries[i]));
}

TEST(AttentionEngine, SelfAttentionMatchesSequentialLoop)
{
    const TestTask t = makeTask(800, 24, 16, 0);
    Matrix queries(24, 16);
    Rng rng(801);
    for (std::size_t r = 0; r < 24; ++r)
        for (std::size_t c = 0; c < 16; ++c)
            queries(r, c) = static_cast<float>(rng.normal());

    const ApproxConfig config = ApproxConfig::conservative();
    const AttentionEngine engine(4);
    const SelfAttentionResult batched =
        engine.selfAttention(t.key, t.value, queries, config);

    // Sequential reference: the pre-engine per-token loop.
    const ApproxAttention backend(t.key, t.value, config);
    ASSERT_EQ(batched.perToken.size(), 24u);
    for (std::size_t tok = 0; tok < 24; ++tok) {
        Vector q(queries.row(tok).begin(), queries.row(tok).end());
        expectBitIdentical(batched.perToken[tok], backend.run(q));
    }
    EXPECT_EQ(batched.outputs.rows(), 24u);
}

TEST(AttentionEngine, MultiHopBatchMatchesSequential)
{
    const TestTask t = makeTask(900, 20, 8, 6);
    const MultiHopAttention hops(t.key, t.value,
                                 ApproxConfig::conservative(), 3);
    const std::vector<MultiHopResult> batched =
        hops.runBatch(t.queries);
    ASSERT_EQ(batched.size(), t.queries.size());
    for (std::size_t i = 0; i < t.queries.size(); ++i) {
        const MultiHopResult sequential = hops.run(t.queries[i]);
        ASSERT_EQ(batched[i].hops.size(), sequential.hops.size());
        EXPECT_EQ(batched[i].finalQuery, sequential.finalQuery);
        for (std::size_t h = 0; h < sequential.hops.size(); ++h)
            expectBitIdentical(batched[i].hops[h],
                               sequential.hops[h]);
    }
}

TEST(AttentionEngine, SharedEngineSingleton)
{
    EXPECT_EQ(&AttentionEngine::shared(), &AttentionEngine::shared());
    EXPECT_GE(AttentionEngine::shared().threads(), 1u);
}

}  // namespace
}  // namespace a3
