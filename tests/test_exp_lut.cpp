/**
 * @file
 * Tests for the two-half exponent LUT (Section III, Module 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fixed/exp_lut.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(ExpLut, ZeroInputGivesSaturatedOne)
{
    ExpLut lut(8, 8);
    // e^0 = 1.0 saturates into Q0.8 as 255/256.
    EXPECT_EQ(lut.lookup(0), 255);
}

TEST(ExpLut, KnownValues)
{
    ExpLut lut(8, 8);
    // e^-1: input raw = -256 (1.0 with 8 fraction bits).
    const double got = static_cast<double>(lut.lookup(-256)) / 256.0;
    EXPECT_NEAR(got, std::exp(-1.0), lut.maxAbsError());
    // e^-0.5
    const double half = static_cast<double>(lut.lookup(-128)) / 256.0;
    EXPECT_NEAR(half, std::exp(-0.5), lut.maxAbsError());
}

TEST(ExpLut, UnderflowsToZero)
{
    ExpLut lut(8, 8);
    // e^-30 is far below half an output LSB.
    EXPECT_EQ(lut.lookup(-30 * 256), 0);
}

TEST(ExpLut, MonotoneNonIncreasingWithinOneLsb)
{
    // The two half-tables round independently, so the composed lookup
    // is only monotone to within one output LSB — exactly like the
    // synthesized unit; the analytic error bound still holds.
    ExpLut lut(6, 6);
    std::int64_t prev = lut.lookup(0);
    for (std::int64_t raw = -1; raw >= -(1 << 12); raw -= 3) {
        const std::int64_t cur = lut.lookup(raw);
        EXPECT_LE(cur, prev + 1) << "raw=" << raw;
        prev = std::min(prev, cur);
    }
}

TEST(ExpLut, TableSizesAreTwoHalves)
{
    ExpLut lut(8, 8);
    // The split covers indexBits() total bits with two tables whose
    // sizes multiply to 2^indexBits — the paper's decomposition.
    EXPECT_EQ(lut.upperEntries() * lut.lowerEntries(),
              std::size_t{1} << lut.indexBits());
    // Both tables must be far smaller than the monolithic 2^indexBits.
    EXPECT_LT(lut.upperEntries(),
              std::size_t{1} << (lut.indexBits() - 2));
}

/** Property: error bound holds across formats and random inputs. */
class ExpLutErrorBound
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(ExpLutErrorBound, WithinAnalyticBound)
{
    const auto [inBits, outBits] = GetParam();
    ExpLut lut(inBits, outBits);
    Rng rng(400 + static_cast<std::uint64_t>(inBits * 31 + outBits));
    const double outScale = std::ldexp(1.0, outBits);
    for (int i = 0; i < 20000; ++i) {
        // Sample magnitudes heavily in the non-underflow region.
        const double x = -rng.uniform(0.0, 10.0);
        const auto raw = static_cast<std::int64_t>(
            std::floor(x * std::ldexp(1.0, inBits)));
        const double got =
            static_cast<double>(lut.lookup(raw)) / outScale;
        const double exact =
            std::exp(std::ldexp(static_cast<double>(raw), -inBits));
        EXPECT_NEAR(got, exact, lut.maxAbsError())
            << "in=" << inBits << " out=" << outBits << " raw=" << raw;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, ExpLutErrorBound,
    ::testing::Values(std::pair{4, 4}, std::pair{6, 6}, std::pair{8, 8},
                      std::pair{8, 6}, std::pair{10, 10},
                      std::pair{12, 12}));

/**
 * The Section III-B footnote: for x <= 0 the exponential *contracts*
 * quantization error, |e^{x+eps} - e^x| < |eps|.
 */
TEST(ExpLut, ExponentialContractsErrorForNegativeInputs)
{
    Rng rng(500);
    for (int i = 0; i < 10000; ++i) {
        const double x = -rng.uniform(0.0, 8.0);
        const double eps = rng.uniform(-0.03, 0.03);
        if (x + eps > 0.0)
            continue;
        EXPECT_LT(std::fabs(std::exp(x + eps) - std::exp(x)),
                  std::fabs(eps) + 1e-15);
    }
}

}  // namespace
}  // namespace a3
