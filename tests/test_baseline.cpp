/**
 * @file
 * Tests for the measured CPU baseline and the analytic device models.
 */

#include <gtest/gtest.h>

#include "baseline/cpu_baseline.hpp"
#include "baseline/device_models.hpp"

namespace a3 {
namespace {

TEST(CpuMeasurement, ProducesPositiveTiming)
{
    const CpuMeasurement m = measureCpuAttention(20, 64, 50);
    EXPECT_GT(m.secondsPerOp, 0.0);
    EXPECT_EQ(m.operations, 50u);
    EXPECT_GT(m.opsPerSecond(), 0.0);
}

TEST(CpuMeasurement, LargerTasksTakeLonger)
{
    const CpuMeasurement small = measureCpuAttention(20, 64, 40, 3);
    const CpuMeasurement large = measureCpuAttention(320, 64, 40, 3);
    EXPECT_GT(large.secondsPerOp, small.secondsPerOp);
}

TEST(AttentionFlops, ScalesWithNAndD)
{
    EXPECT_DOUBLE_EQ(attentionFlops(10, 8),
                     1.05 * 4.0 * 10.0 * 8.0);
    EXPECT_GT(attentionFlops(320, 64), attentionFlops(20, 64));
}

TEST(CpuTimingModel, SingleQueryDominatedByDispatch)
{
    CpuTimingModel cpu;
    const double sec = cpu.singleQuerySeconds(20, 64);
    EXPECT_GT(sec, CpuTimingModel::dispatchOverheadSec);
    EXPECT_LT(sec, 2.0 * CpuTimingModel::dispatchOverheadSec);
}

TEST(CpuTimingModel, BatchingAmortizesDispatch)
{
    CpuTimingModel cpu;
    const double single = cpu.singleQuerySeconds(320, 64);
    const double batched = cpu.batchedSeconds(320, 64, 320);
    EXPECT_LT(batched, single);
    EXPECT_LT(batched, 3e-6);
}

TEST(GpuTimingModel, FasterThanCpuOnBatchedWork)
{
    CpuTimingModel cpu;
    GpuTimingModel gpu;
    EXPECT_LT(gpu.batchedSeconds(320, 64, 320),
              cpu.batchedSeconds(320, 64, 320));
}

TEST(TimeShareModel, SharesComputedCorrectly)
{
    TimeShareModel m;
    m.workload = "test";
    m.attentionSec = 4.0;
    m.comprehensionSec = 5.0;
    m.otherQuerySec = 1.0;
    EXPECT_DOUBLE_EQ(m.attentionShareTotal(), 0.4);
    EXPECT_DOUBLE_EQ(m.attentionShareQueryTime(), 0.8);
}

TEST(TimeShareModel, QueryShareExceedsTotalShare)
{
    // Removing query-independent comprehension can only raise the
    // attention share (the Figure 3 right-vs-left panel effect).
    TimeShareModel m;
    m.attentionSec = 2.0;
    m.comprehensionSec = 3.0;
    m.otherQuerySec = 0.5;
    EXPECT_GT(m.attentionShareQueryTime(), m.attentionShareTotal());
}

}  // namespace
}  // namespace a3
