/**
 * @file
 * Tests for cross-session prefix sharing and the disk spill tier:
 * content addressing (determinism, config sensitivity, the running
 * tail hasher), ShardStore resolution order (live -> spill -> cold)
 * with refcount semantics, spill-image round trips pinned
 * bit-identical for every backend kind and packed format, corrupt /
 * stale image rejection falling back to cold binds, the
 * SessionCache typed surface (BindOutcome / AppendOutcome /
 * SessionHandle staleness), shared-bytes-once budget accounting,
 * eviction safety for shared shards, copy-on-append tail isolation,
 * freeze-path compaction, and deadline-hint propagation from the
 * scheduler into backends.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "serving/shard_image.hpp"
#include "serving/shard_store.hpp"
#include "serving/sharded_backend.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::ExactFloat, EngineKind::ApproxFloat,
    EngineKind::ExactQuantized, EngineKind::ApproxQuantized};

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

/** Fresh unique spill directory under /tmp, removed on destruction. */
class TempSpillDir
{
  public:
    TempSpillDir()
    {
        char templ[] = "/tmp/a3_prefix_test_XXXXXX";
        const char *made = mkdtemp(templ);
        EXPECT_NE(made, nullptr);
        path_ = made ? made : "";
    }

    ~TempSpillDir()
    {
        if (path_.empty())
            return;
        const std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

EngineConfig
configOf(EngineKind kind)
{
    EngineConfig config;
    config.kind = kind;
    return config;
}

// -- Content addressing ---------------------------------------------

TEST(ShardStoreKeys, ContentKeyDeterministicAndInputSensitive)
{
    Rng rng(7);
    const Matrix key = randomMatrix(rng, 48, 16);
    const Matrix value = randomMatrix(rng, 48, 16);
    const EngineConfig config = configOf(EngineKind::ExactFloat);

    ShardKeyHasher a;
    a.mixConfig(config);
    a.mixTaskRows(key, value, 0, 32);
    ShardKeyHasher b;
    b.mixConfig(config);
    b.mixTaskRows(key, value, 0, 32);
    EXPECT_EQ(a.key(), b.key());

    // A different row slice of the same matrices hashes differently.
    ShardKeyHasher c;
    c.mixConfig(config);
    c.mixTaskRows(key, value, 16, 32);
    EXPECT_FALSE(a.key() == c.key());

    // A single flipped float changes the key.
    Matrix tweaked = key;
    tweaked(3, 5) += 1.0f;
    ShardKeyHasher d;
    d.mixConfig(config);
    d.mixTaskRows(tweaked, value, 0, 32);
    EXPECT_FALSE(a.key() == d.key());
}

TEST(ShardStoreKeys, ConfigFingerprintCoversOnlyRelevantKnobs)
{
    Rng rng(11);
    const Matrix key = randomMatrix(rng, 32, 8);
    const Matrix value = randomMatrix(rng, 32, 8);

    // Quantization widths are irrelevant to ExactFloat shards: two
    // float configs differing only in intBits share a key...
    EngineConfig floatA = configOf(EngineKind::ExactFloat);
    floatA.intBits = 4;
    EngineConfig floatB = floatA;
    floatB.intBits = 6;
    ShardKeyHasher a, b;
    a.mixConfig(floatA);
    a.mixTaskRows(key, value, 0, 32);
    b.mixConfig(floatB);
    b.mixTaskRows(key, value, 0, 32);
    EXPECT_EQ(a.key(), b.key());

    // ...while for a quantized kind the same knob splits the key.
    EngineConfig quantA = configOf(EngineKind::ExactQuantized);
    quantA.intBits = 4;
    EngineConfig quantB = quantA;
    quantB.intBits = 6;
    ShardKeyHasher c, d;
    c.mixConfig(quantA);
    c.mixTaskRows(key, value, 0, 32);
    d.mixConfig(quantB);
    d.mixTaskRows(key, value, 0, 32);
    EXPECT_FALSE(c.key() == d.key());

    // And kinds never collide with each other.
    ShardKeyHasher e;
    e.mixConfig(configOf(EngineKind::ApproxFloat));
    e.mixTaskRows(key, value, 0, 32);
    EXPECT_FALSE(a.key() == e.key());
    EXPECT_FALSE(c.key() == e.key());
}

TEST(ShardStoreKeys, RunningTailHashMatchesFreshBind)
{
    Rng rng(13);
    const Matrix key = randomMatrix(rng, 64, 12);
    const Matrix value = randomMatrix(rng, 64, 12);
    const EngineConfig config = configOf(EngineKind::ExactQuantized);

    // A tail bound over rows [0, 16) then extended by [16, 64) in
    // three appends must freeze to the key of a one-shot bind.
    auto tail = ShardHandle::bindTail(config, key, value, 0, 16);
    tail->appendRows(key.rowSlice(16, 16), value.rowSlice(16, 16));
    tail->appendRows(key.rowSlice(32, 8), value.rowSlice(32, 8));
    tail->appendRows(key.rowSlice(40, 24), value.rowSlice(40, 24));
    tail->freeze();

    auto fresh = ShardHandle::bindTail(config, key, value, 0, 64);
    fresh->freeze();

    EXPECT_EQ(tail->contentKey(), fresh->contentKey());
    EXPECT_EQ(tail->contentKey().hex(), fresh->contentKey().hex());
    EXPECT_EQ(tail->contentKey().hex().size(), 32u);
}

TEST(ShardStoreKeys, HexRoundTrips)
{
    ShardKey key{0x0123456789abcdefull, 0xfedcba9876543210ull};
    ShardKey parsed;
    ASSERT_TRUE(ShardKey::parseHex(key.hex(), parsed));
    EXPECT_EQ(key, parsed);
    EXPECT_FALSE(ShardKey::parseHex("not-a-key", parsed));
    EXPECT_FALSE(ShardKey::parseHex(key.hex().substr(1), parsed));
}

// -- ShardStore resolution and refcounting --------------------------

TEST(ShardStoreAcquire, DedupsLiveHandlesAcrossCallers)
{
    Rng rng(17);
    const Matrix key = randomMatrix(rng, 96, 16);
    const Matrix value = randomMatrix(rng, 96, 16);
    const EngineConfig config = configOf(EngineKind::ExactFloat);

    ShardStore store;
    ShardSource source = ShardSource::ColdBound;
    auto first = store.acquire(config, key, value, 0, 48, &source);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(source, ShardSource::ColdBound);
    EXPECT_TRUE(first->frozen());
    EXPECT_EQ(store.liveCount(), 1u);

    // Same slice again: the very same handle object, refcounted.
    auto second = store.acquire(config, key, value, 0, 48, &source);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(source, ShardSource::LiveShared);
    EXPECT_GE(second.use_count(), 2);
    EXPECT_EQ(store.liveCount(), 1u);

    // A different slice cold-binds its own handle.
    auto other = store.acquire(config, key, value, 48, 48, &source);
    EXPECT_NE(other.get(), first.get());
    EXPECT_EQ(source, ShardSource::ColdBound);
    EXPECT_EQ(store.liveCount(), 2u);

    const ShardStoreStats stats = store.stats();
    EXPECT_EQ(stats.liveHits, 1u);
    EXPECT_EQ(stats.coldBinds, 2u);
    EXPECT_EQ(stats.spillRestores, 0u);
}

TEST(ShardStoreAcquire, DeadHandleIsPrunedAndReboundCold)
{
    Rng rng(19);
    const Matrix key = randomMatrix(rng, 32, 8);
    const Matrix value = randomMatrix(rng, 32, 8);
    const EngineConfig config = configOf(EngineKind::ApproxFloat);

    ShardStore store;  // no spill dir: dropping the handle loses it
    auto handle = store.acquire(config, key, value, 0, 32);
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(store.liveCount(), 1u);

    handle.reset();  // last reference gone; weak entry is now dead

    ShardSource source = ShardSource::LiveShared;
    auto again = store.acquire(config, key, value, 0, 32, &source);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(source, ShardSource::ColdBound);
    EXPECT_EQ(store.stats().coldBinds, 2u);
    EXPECT_EQ(store.liveCount(), 1u);
}

TEST(ShardStoreAcquire, AdoptFrozenPrefersLiveCanonicalHandle)
{
    Rng rng(23);
    const Matrix key = randomMatrix(rng, 40, 8);
    const Matrix value = randomMatrix(rng, 40, 8);
    const EngineConfig config = configOf(EngineKind::ExactFloat);

    ShardStore store;
    auto canonical = store.acquire(config, key, value, 0, 40);
    ASSERT_NE(canonical, nullptr);

    // Another session freezes an identical tail; adoption must hand
    // back the canonical live handle, not index a duplicate.
    auto dup = ShardHandle::bindTail(config, key, value, 0, 40);
    dup->freeze();
    ASSERT_EQ(dup->contentKey(), canonical->contentKey());
    auto adopted = store.adoptFrozen(std::move(dup));
    EXPECT_EQ(adopted.get(), canonical.get());
    EXPECT_EQ(store.liveCount(), 1u);
    EXPECT_EQ(store.stats().adoptions, 1u);
    EXPECT_EQ(store.stats().liveHits, 1u);
}

// -- Spill tier -----------------------------------------------------

TEST(SpillTier, RoundTripBitIdenticalForEveryKind)
{
    Rng rng(29);
    const std::size_t n = 72;
    const std::size_t d = 16;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const Vector query = randomQuery(rng, d);

    for (EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        const EngineConfig config = configOf(kind);
        TempSpillDir dir;

        ShardKey spilledKey;
        {
            ShardStore store({dir.path(), 0});
            auto handle = store.acquire(config, key, value, 0, n);
            ASSERT_NE(handle, nullptr);
            spilledKey = handle->contentKey();
            EXPECT_EQ(store.spillCount(), 1u);
            EXPECT_EQ(store.stats().spillWrites, 1u);
        }  // store and handle die; only the image remains

        // A fresh store over the same directory restarts warm: the
        // scan re-indexes the image and acquire() restores from it.
        ShardStore restarted({dir.path(), 0});
        EXPECT_EQ(restarted.spillCount(), 1u);
        ShardSource source = ShardSource::ColdBound;
        auto restored =
            restarted.acquire(config, key, value, 0, n, &source);
        ASSERT_NE(restored, nullptr);
        EXPECT_EQ(source, ShardSource::SpillRestored);
        EXPECT_EQ(restored->contentKey(), spilledKey);
        EXPECT_EQ(restarted.stats().spillRestores, 1u);
        EXPECT_EQ(restarted.stats().coldBinds, 0u);

        // Restored answers must be bit-identical to a cold bind.
        auto cold = makeBackend(config, key, value);
        AttentionResult fromSpill, fromCold;
        restored->backend().runInto(query, fromSpill);
        cold->runInto(query, fromCold);
        expectBitIdentical(fromSpill, fromCold);
    }
}

TEST(SpillTier, PackedFormatsRoundTripBitIdentical)
{
    Rng rng(31);
    const std::size_t n = 64;
    const std::size_t d = 12;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const Vector query = randomQuery(rng, d);

    const PackedKvFormat formats[] = {PackedKvFormat::Word32,
                                      PackedKvFormat::Int8,
                                      PackedKvFormat::Int4};
    for (PackedKvFormat format : formats) {
        SCOPED_TRACE(packedKvFormatName(format));
        EngineConfig config = configOf(EngineKind::ExactQuantized);
        config.intBits = format == PackedKvFormat::Int4 ? 1 : 3;
        config.fracBits = format == PackedKvFormat::Int4 ? 2 : 4;
        config.packedKv = format;
        TempSpillDir dir;

        {
            ShardStore store({dir.path(), 0});
            auto handle = store.acquire(config, key, value, 0, n);
            ASSERT_NE(handle, nullptr);
        }
        ShardStore restarted({dir.path(), 0});
        ShardSource source = ShardSource::ColdBound;
        auto restored =
            restarted.acquire(config, key, value, 0, n, &source);
        ASSERT_NE(restored, nullptr);
        EXPECT_EQ(source, ShardSource::SpillRestored);

        auto cold = makeBackend(config, key, value);
        AttentionResult fromSpill, fromCold;
        restored->backend().runInto(query, fromSpill);
        cold->runInto(query, fromCold);
        expectBitIdentical(fromSpill, fromCold);
    }
}

TEST(SpillTier, CorruptImageRejectedAndColdBound)
{
    Rng rng(37);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig config = configOf(EngineKind::ExactFloat);
    TempSpillDir dir;

    std::string imagePath;
    {
        ShardStore store({dir.path(), 0});
        auto handle = store.acquire(config, key, value, 0, 48);
        ASSERT_NE(handle, nullptr);
        imagePath =
            dir.path() + "/" + handle->contentKey().hex() + ".shard";
    }

    // Flip one payload byte in place.
    {
        std::FILE *f = std::fopen(imagePath.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
        const int last = std::fgetc(f);
        ASSERT_NE(last, EOF);
        ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
        std::fputc(last ^ 0xff, f);
        std::fclose(f);
    }

    ShardStore restarted({dir.path(), 0});
    EXPECT_EQ(restarted.spillCount(), 1u);
    ShardSource source = ShardSource::SpillRestored;
    auto handle = restarted.acquire(config, key, value, 0, 48, &source);
    ASSERT_NE(handle, nullptr);  // a bad image is a miss, not an error
    EXPECT_EQ(source, ShardSource::ColdBound);
    EXPECT_EQ(restarted.stats().spillRejects, 1u);
    EXPECT_EQ(restarted.stats().coldBinds, 1u);

    Rng qrng(38);
    const Vector query = randomQuery(qrng, 8);
    auto cold = makeBackend(config, key, value);
    AttentionResult got, want;
    handle->backend().runInto(query, got);
    cold->runInto(query, want);
    expectBitIdentical(got, want);
}

TEST(SpillTier, VersionMismatchRejected)
{
    Rng rng(41);
    const Matrix key = randomMatrix(rng, 32, 8);
    const Matrix value = randomMatrix(rng, 32, 8);
    const EngineConfig config = configOf(EngineKind::ExactFloat);

    auto handle = ShardHandle::bindTail(config, key, value, 0, 32);
    handle->freeze();
    std::vector<std::uint8_t> image =
        encodeShardImage(config, handle->contentKey(),
                         handle->backend());
    ASSERT_GE(image.size(), 6u);
    image[4] ^= 0x01;  // bump the little-endian version field

    auto decoded =
        decodeShardImage(config, handle->contentKey(), image.data(),
                         image.size());
    EXPECT_EQ(decoded, nullptr);

    // Untouched, the same bytes decode fine.
    image[4] ^= 0x01;
    decoded = decodeShardImage(config, handle->contentKey(),
                               image.data(), image.size());
    EXPECT_NE(decoded, nullptr);
}

TEST(SpillTier, BudgetEvictsLeastRecentlyTouchedImage)
{
    Rng rng(43);
    const Matrix key = randomMatrix(rng, 90, 8);
    const Matrix value = randomMatrix(rng, 90, 8);
    const EngineConfig config = configOf(EngineKind::ExactFloat);
    TempSpillDir dir;

    // Budget fits roughly two 30-row float images, not three.
    ShardStore probe({dir.path(), 0});
    auto sized = probe.acquire(config, key, value, 0, 30);
    ASSERT_NE(sized, nullptr);
    const std::size_t oneImage = probe.spillBytesInUse();
    ASSERT_GT(oneImage, 0u);

    ShardStore store({dir.path() + "/capped", oneImage * 5 / 2});
    auto a = store.acquire(config, key, value, 0, 30);
    auto b = store.acquire(config, key, value, 30, 30);
    ASSERT_EQ(store.spillCount(), 2u);
    auto c = store.acquire(config, key, value, 60, 30);
    EXPECT_EQ(store.spillCount(), 2u);
    EXPECT_EQ(store.stats().spillEvictions, 1u);
    EXPECT_LE(store.spillBytesInUse(), oneImage * 5 / 2);

    // The evicted image was the least recently touched (shard a);
    // dropping every live handle and re-acquiring proves c survived
    // on disk while a is gone.
    a.reset();
    b.reset();
    c.reset();
    ShardSource source = ShardSource::ColdBound;
    auto cAgain = store.acquire(config, key, value, 60, 30, &source);
    ASSERT_NE(cAgain, nullptr);
    EXPECT_EQ(source, ShardSource::SpillRestored);
    cAgain.reset();
    auto aAgain = store.acquire(config, key, value, 0, 30, &source);
    ASSERT_NE(aAgain, nullptr);
    EXPECT_EQ(source, ShardSource::ColdBound);
}

// -- Cross-session sharing through the cache ------------------------

TEST(PrefixSharing, SessionsShareFrozenShardsChargedOnce)
{
    Rng rng(47);
    const std::size_t n = 96;
    const std::size_t d = 16;
    const std::size_t shardRows = 32;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    for (EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        ShardStore store;
        SessionCacheConfig config;
        config.engine = configOf(kind);
        config.shardRows = shardRows;
        config.store = &store;
        SessionCache cache(config);

        BindOutcome first = cache.bindSession("alice", key, value);
        ASSERT_TRUE(first.bound());
        EXPECT_EQ(first.status, BindStatus::BoundFresh);
        EXPECT_EQ(first.shardCount, 3u);
        EXPECT_EQ(first.sharedShards, 0u);
        EXPECT_GT(first.chargedBytes, 0u);

        BindOutcome second = cache.bindSession("bob", key, value);
        ASSERT_TRUE(second.bound());
        EXPECT_EQ(second.status, BindStatus::BoundShared);
        EXPECT_EQ(second.shardCount, 3u);
        // 96 = 3 x 32: every shard is full and frozen, so all of
        // bob's shards dedup against alice's (no private tail rows).
        EXPECT_EQ(second.sharedShards, 3u);
        EXPECT_EQ(second.logicalBytes, first.logicalBytes);
        // Shared bytes are charged once: bob adds nothing.
        EXPECT_EQ(second.chargedBytes, 0u);
        EXPECT_EQ(cache.bytesInUse(), first.chargedBytes);

        // The sharing is by handle identity, not by coincidence.
        auto aliceBackend = first.handle.backend();
        auto bobBackend = second.handle.backend();
        ASSERT_NE(aliceBackend, nullptr);
        ASSERT_NE(bobBackend, nullptr);
        const auto *aliceSharded =
            dynamic_cast<const ShardedBackend *>(aliceBackend.get());
        const auto *bobSharded =
            dynamic_cast<const ShardedBackend *>(bobBackend.get());
        ASSERT_NE(aliceSharded, nullptr);
        ASSERT_NE(bobSharded, nullptr);
        for (std::size_t s = 0; s < 3; ++s)
            EXPECT_EQ(aliceSharded->shardHandle(s).get(),
                      bobSharded->shardHandle(s).get());
    }
}

TEST(PrefixSharing, EvictingSharedSessionKeepsOthersAlive)
{
    Rng rng(53);
    const std::size_t n = 64;
    const std::size_t d = 12;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const Vector query = randomQuery(rng, d);

    ShardStore store;
    SessionCacheConfig config;
    config.engine = configOf(EngineKind::ExactQuantized);
    config.shardRows = 32;
    config.store = &store;
    SessionCache cache(config);

    BindOutcome alice = cache.bindSession("alice", key, value);
    BindOutcome bob = cache.bindSession("bob", key, value);
    ASSERT_TRUE(alice.bound());
    ASSERT_TRUE(bob.bound());
    EXPECT_EQ(bob.status, BindStatus::BoundShared);

    AttentionResult before;
    bob.handle.backend()->runInto(query, before);

    // Dropping alice must not disturb bob: the shared shards stay
    // alive through bob's references, and his answers are unchanged.
    ASSERT_TRUE(cache.erase("alice"));
    EXPECT_EQ(alice.handle.backend(), nullptr);  // handle went stale
    ASSERT_NE(bob.handle.backend(), nullptr);
    AttentionResult after;
    bob.handle.backend()->runInto(query, after);
    expectBitIdentical(before, after);
    EXPECT_EQ(store.liveCount(), 2u);

    // Bob alone now carries the charge (same bytes, one session).
    EXPECT_EQ(cache.bytesInUse(), alice.chargedBytes);
}

TEST(PrefixSharing, AppendAfterShareCopiesOnlyTheTail)
{
    Rng rng(59);
    const std::size_t d = 12;
    const std::size_t shardRows = 32;
    const Matrix key = randomMatrix(rng, 80, d);
    const Matrix value = randomMatrix(rng, 80, d);

    ShardStore store;
    SessionCacheConfig config;
    config.engine = configOf(EngineKind::ExactFloat);
    config.shardRows = shardRows;
    config.store = &store;
    SessionCache cache(config);

    // 80 rows = 2 frozen shards + a 16-row mutable tail each. The
    // frozen prefix is shared; the tails are private per session.
    BindOutcome alice = cache.bindSession("alice", key, value);
    BindOutcome bob = cache.bindSession("bob", key, value);
    ASSERT_TRUE(alice.bound());
    ASSERT_TRUE(bob.bound());
    EXPECT_EQ(alice.shardCount, 3u);
    EXPECT_EQ(bob.sharedShards, 2u);

    const auto *aliceSharded = dynamic_cast<const ShardedBackend *>(
        alice.handle.backend().get());
    const auto *bobSharded = dynamic_cast<const ShardedBackend *>(
        bob.handle.backend().get());
    ASSERT_NE(aliceSharded, nullptr);
    ASSERT_NE(bobSharded, nullptr);
    const ShardHandle *aliceFrozen0 =
        aliceSharded->shardHandle(0).get();
    const ShardHandle *aliceFrozen1 =
        aliceSharded->shardHandle(1).get();
    EXPECT_EQ(bobSharded->shardHandle(0).get(), aliceFrozen0);
    EXPECT_EQ(bobSharded->shardHandle(1).get(), aliceFrozen1);
    EXPECT_NE(bobSharded->shardHandle(2).get(),
              aliceSharded->shardHandle(2).get());

    // Growing alice touches only her tail: the shared frozen shards
    // are the same objects afterwards, and bob is untouched.
    Rng grow(60);
    const Matrix moreKey = randomMatrix(grow, 24, d);
    const Matrix moreValue = randomMatrix(grow, 24, d);
    AppendOutcome grown =
        cache.appendSession(alice.handle, moreKey, moreValue);
    ASSERT_TRUE(grown.ok());
    EXPECT_EQ(grown.rowsAppended, 24u);
    // 80 + 24 = 104 rows: the tail froze at 96 and a new one opened.
    EXPECT_EQ(grown.shardCount, 4u);
    EXPECT_EQ(aliceSharded->shardHandle(0).get(), aliceFrozen0);
    EXPECT_EQ(aliceSharded->shardHandle(1).get(), aliceFrozen1);
    EXPECT_TRUE(aliceSharded->shardHandle(2)->frozen());
    EXPECT_FALSE(aliceSharded->shardHandle(3)->frozen());
    EXPECT_EQ(bobSharded->rows(), 80u);
    EXPECT_EQ(bobSharded->shardCount(), 3u);
}

TEST(PrefixSharing, WarmRebindRestoresFromSpill)
{
    Rng rng(61);
    const std::size_t n = 96;
    const std::size_t d = 12;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const Vector query = randomQuery(rng, d);
    const EngineConfig engine = configOf(EngineKind::ApproxQuantized);
    TempSpillDir dir;

    AttentionResult coldAnswer;
    {
        ShardStore store({dir.path(), 0});
        SessionCacheConfig config;
        config.engine = engine;
        config.shardRows = 32;
        config.store = &store;
        SessionCache cache(config);
        BindOutcome cold = cache.bindSession("doc", key, value);
        ASSERT_TRUE(cold.bound());
        EXPECT_EQ(cold.status, BindStatus::BoundFresh);
        cold.handle.backend()->runInto(query, coldAnswer);
        EXPECT_EQ(store.spillCount(), 3u);
    }  // cache, store, and every live handle die

    // A fresh store over the same spill dir re-binds warm: every
    // shard restores from disk and the answers are bit-identical.
    ShardStore store({dir.path(), 0});
    SessionCacheConfig config;
    config.engine = engine;
    config.shardRows = 32;
    config.store = &store;
    SessionCache cache(config);
    BindOutcome warm = cache.bindSession("doc", key, value);
    ASSERT_TRUE(warm.bound());
    EXPECT_EQ(warm.status, BindStatus::BoundRestored);
    EXPECT_EQ(warm.restoredShards, 3u);
    EXPECT_EQ(warm.sharedShards, 0u);
    AttentionResult warmAnswer;
    warm.handle.backend()->runInto(query, warmAnswer);
    expectBitIdentical(warmAnswer, coldAnswer);
}

TEST(PrefixSharing, StoreBackedMatchesStoreLessResults)
{
    Rng rng(67);
    const std::size_t n = 80;
    const std::size_t d = 16;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    // Store-backed partitioning is prefix-aligned rather than
    // balanced, so shard boundaries differ from the legacy layout —
    // but the merged answer must agree to the documented reference
    // bound, and for a single shard both modes are bit-identical to
    // the unsharded backend.
    for (EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        const EngineConfig config = configOf(kind);
        ShardStore store;
        ShardedConfig withStore;
        withStore.shardRows = n;  // single shard: exact delegation
        withStore.store = &store;
        ShardedBackend sharded(config, key, value, withStore);
        ASSERT_EQ(sharded.shardCount(), 1u);

        auto plain = makeBackend(config, key, value);
        Rng qrng(68);
        for (int i = 0; i < 3; ++i) {
            const Vector query = randomQuery(qrng, d);
            AttentionResult got, want;
            sharded.runInto(query, got);
            plain->runInto(query, want);
            expectBitIdentical(got, want);
        }
    }
}

// -- Typed session surface ------------------------------------------

TEST(SessionHandles, BindStatusProgression)
{
    Rng rng(71);
    const Matrix key = randomMatrix(rng, 64, 8);
    const Matrix value = randomMatrix(rng, 64, 8);

    ShardStore store;
    SessionCacheConfig config;
    config.engine = configOf(EngineKind::ExactFloat);
    config.shardRows = 32;
    config.store = &store;
    SessionCache cache(config);

    BindOutcome fresh = cache.bindSession("s1", key, value);
    EXPECT_EQ(fresh.status, BindStatus::BoundFresh);
    BindOutcome again = cache.bindSession("s1", key, value);
    EXPECT_EQ(again.status, BindStatus::AlreadyBound);
    EXPECT_EQ(again.handle.backend().get(),
              fresh.handle.backend().get());
    BindOutcome shared = cache.bindSession("s2", key, value);
    EXPECT_EQ(shared.status, BindStatus::BoundShared);

    EXPECT_STREQ(bindStatusName(BindStatus::AlreadyBound),
                 "already_bound");
    EXPECT_STREQ(bindStatusName(BindStatus::BoundFresh),
                 "bound_fresh");
    EXPECT_STREQ(bindStatusName(BindStatus::BoundShared),
                 "bound_shared");
    EXPECT_STREQ(bindStatusName(BindStatus::BoundRestored),
                 "bound_restored");
    EXPECT_STREQ(appendStatusName(AppendStatus::Appended), "appended");
    EXPECT_STREQ(appendStatusName(AppendStatus::SessionUnbound),
                 "session_unbound");
}

TEST(SessionHandles, StaleHandleAppendFailsTyped)
{
    Rng rng(73);
    const std::size_t d = 8;
    const Matrix key = randomMatrix(rng, 32, d);
    const Matrix value = randomMatrix(rng, 32, d);
    const Matrix moreKey = randomMatrix(rng, 4, d);
    const Matrix moreValue = randomMatrix(rng, 4, d);

    SessionCacheConfig config;
    config.engine = configOf(EngineKind::ExactFloat);
    SessionCache cache(config);

    // Never-issued handle: invalid, append refuses typed.
    SessionHandle never;
    EXPECT_FALSE(never.valid());
    AppendOutcome refused =
        cache.appendSession(never, moreKey, moreValue);
    EXPECT_EQ(refused.status, AppendStatus::SessionUnbound);
    EXPECT_EQ(refused.rowsAppended, 0u);

    // Evicted session: the issued handle goes stale.
    BindOutcome bound = cache.bindSession("doc", key, value);
    ASSERT_TRUE(bound.bound());
    ASSERT_TRUE(cache.erase("doc"));
    EXPECT_EQ(bound.handle.backend(), nullptr);
    AppendOutcome stale =
        cache.appendSession(bound.handle, moreKey, moreValue);
    EXPECT_EQ(stale.status, AppendStatus::SessionUnbound);

    // Re-bound session: a handle for the *old* binding must not
    // append to the new one, even though the id matches.
    BindOutcome first = cache.bindSession("doc", key, value);
    ASSERT_TRUE(cache.erase("doc"));
    BindOutcome second = cache.bindSession("doc", key, value);
    AppendOutcome wrongBinding =
        cache.appendSession(first.handle, moreKey, moreValue);
    EXPECT_EQ(wrongBinding.status, AppendStatus::SessionUnbound);
    AppendOutcome rightBinding =
        cache.appendSession(second.handle, moreKey, moreValue);
    EXPECT_EQ(rightBinding.status, AppendStatus::Appended);
    EXPECT_EQ(rightBinding.rowsAppended, 4u);

    // lookupSession hands back a live handle for the current binding.
    SessionHandle looked = cache.lookupSession("doc");
    EXPECT_TRUE(looked.valid());
    EXPECT_EQ(looked.backend().get(), second.handle.backend().get());
    EXPECT_FALSE(cache.lookupSession("missing").valid());
}

TEST(SessionHandles, SchedulerSubmitsThroughHandles)
{
    Rng rng(79);
    const std::size_t d = 16;
    const Matrix key = randomMatrix(rng, 96, d);
    const Matrix value = randomMatrix(rng, 96, d);

    ShardStore store;
    SessionCacheConfig config;
    config.engine = configOf(EngineKind::ExactFloat);
    config.shardRows = 32;
    config.store = &store;
    SessionCache cache(config);
    AttentionEngine engine(2);
    BatchScheduler scheduler(engine, cache);

    BindOutcome alice = cache.bindSession("alice", key, value);
    BindOutcome bob = cache.bindSession("bob", key, value);
    ASSERT_TRUE(alice.bound());
    ASSERT_TRUE(bob.bound());

    auto a1 = scheduler.submit(alice.handle, randomQuery(rng, d));
    auto b1 = scheduler.submit(bob.handle, randomQuery(rng, d));
    auto a2 = scheduler.submit(alice.handle, randomQuery(rng, d));
    EXPECT_TRUE(a1.admitted());
    EXPECT_TRUE(b1.admitted());
    EXPECT_TRUE(a2.admitted());

    auto results = scheduler.drain();
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.result.output.size(), d);
    }
}

// -- Deadline-budget propagation ------------------------------------

/** Reference wrapper that records the last deadline hint it saw. */
class HintRecordingBackend final : public AttentionBackend
{
  public:
    HintRecordingBackend(Matrix key, Matrix value)
        : inner_(std::move(key), std::move(value))
    {
    }

    std::string name() const override { return "hint-recorder"; }
    void runInto(const Vector &query,
                 AttentionResult &out) const override
    {
        inner_.runInto(query, out);
    }
    void runPartialInto(const Vector &query,
                        PartialResult &out) const override
    {
        inner_.runPartialInto(query, out);
    }
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override
    {
        inner_.append(keyRows, valueRows);
    }
    std::size_t memoryBytes() const override
    {
        return inner_.memoryBytes();
    }
    std::size_t rows() const override { return inner_.rows(); }
    std::size_t dims() const override { return inner_.dims(); }

    void queryDeadlineHint(double remainingSeconds) const override
    {
        lastHint_ = remainingSeconds;
        ++hintCalls_;
    }

    double lastHint() const { return lastHint_; }
    std::size_t hintCalls() const { return hintCalls_; }

  private:
    ReferenceAttention inner_;
    mutable double lastHint_ = -1.0;
    mutable std::size_t hintCalls_ = 0;
};

TEST(DeadlineBudget, DrainPublishesRemainingBudgetToBackends)
{
    Rng rng(83);
    const std::size_t d = 8;
    SessionCache cache;
    auto recorder = std::make_shared<HintRecordingBackend>(
        randomMatrix(rng, 32, d), randomMatrix(rng, 32, d));
    cache.insert("doc", recorder);

    AttentionEngine engine(1);
    BatchScheduler scheduler(engine, cache);

    SubmitOptions options;
    options.deadlineSeconds = 5.0;
    auto admitted =
        scheduler.submit("doc", randomQuery(rng, d), options);
    ASSERT_TRUE(admitted.admitted());
    auto results = scheduler.drain();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok());

    // The drain published the request's remaining budget — positive,
    // and no more than the full deadline — before the engine pass.
    EXPECT_EQ(recorder->hintCalls(), 1u);
    EXPECT_GT(recorder->lastHint(), 0.0);
    EXPECT_LE(recorder->lastHint(), 5.0);
    EXPECT_EQ(scheduler.stats().deadlineHintedGroups, 1u);
}

TEST(DeadlineBudget, GroupsWithoutDeadlinesPublishNoHint)
{
    Rng rng(89);
    const std::size_t d = 8;
    SessionCache cache;
    auto recorder = std::make_shared<HintRecordingBackend>(
        randomMatrix(rng, 32, d), randomMatrix(rng, 32, d));
    cache.insert("doc", recorder);

    AttentionEngine engine(1);
    BatchScheduler scheduler(engine, cache);
    auto admitted = scheduler.submit("doc", randomQuery(rng, d));
    ASSERT_TRUE(admitted.admitted());
    auto results = scheduler.drain();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(recorder->hintCalls(), 0u);
    EXPECT_EQ(scheduler.stats().deadlineHintedGroups, 0u);
}

TEST(DeadlineBudget, ShardedBackendForwardsHintToEveryShard)
{
    Rng rng(97);
    const std::size_t d = 8;
    const Matrix key = randomMatrix(rng, 64, d);
    const Matrix value = randomMatrix(rng, 64, d);

    // The composite forwards queryDeadlineHint to each shard backend;
    // the plain kinds default to a no-op, so this just must not
    // crash and must stay const-callable.
    ShardedConfig config;
    config.shardRows = 16;
    ShardedBackend sharded(configOf(EngineKind::ExactFloat), key,
                           value, config);
    ASSERT_EQ(sharded.shardCount(), 4u);
    const AttentionBackend &asBackend = sharded;
    asBackend.queryDeadlineHint(0.25);
    asBackend.queryDeadlineHint(0.0);  // clearing is also fine
}

// -- Freeze-path compaction -----------------------------------------

TEST(PrefixCompaction, FreezeCompactsAppendSlackWithoutDrift)
{
    Rng rng(101);
    const std::size_t d = 12;
    const Matrix key = randomMatrix(rng, 64, d);
    const Matrix value = randomMatrix(rng, 64, d);

    for (EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        const EngineConfig config = configOf(kind);

        // Build a tail through many small appends (accumulating
        // over-reserve slack), freeze it, and pin its answers to a
        // one-shot cold bind of the same rows: compaction moved
        // bytes, never values — including the sorted-key column
        // order the approx kinds search.
        auto tail = ShardHandle::bindTail(config, key, value, 0, 8);
        for (std::size_t row = 8; row < 64; row += 8)
            tail->appendRows(key.rowSlice(row, 8),
                             value.rowSlice(row, 8));
        const std::size_t before = tail->bytes();
        tail->freeze();
        EXPECT_LE(tail->bytes(), before);

        auto cold = makeBackend(config, key, value);
        Rng qrng(102);
        for (int i = 0; i < 3; ++i) {
            const Vector query = randomQuery(qrng, d);
            AttentionResult got, want;
            tail->backend().runInto(query, got);
            cold->runInto(query, want);
            expectBitIdentical(got, want);
        }
    }
}

TEST(PrefixCompaction, CompactIsIdempotentAndReportsReclaim)
{
    Rng rng(103);
    const std::size_t d = 8;
    Matrix key = randomMatrix(rng, 16, d);
    Matrix value = randomMatrix(rng, 16, d);
    const Matrix moreKey = randomMatrix(rng, 48, d);
    const Matrix moreValue = randomMatrix(rng, 48, d);

    for (EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        auto backend = makeBackend(configOf(kind), key, value);
        backend->append(moreKey, moreValue);
        const std::size_t bytesBefore = backend->memoryBytes();
        backend->compact();
        // Compaction releases slack capacity; the logical footprint
        // never grows, and a second compact finds nothing left.
        EXPECT_LE(backend->memoryBytes(), bytesBefore);
        EXPECT_EQ(backend->compact(), 0u);
    }
}

}  // namespace
}  // namespace a3
