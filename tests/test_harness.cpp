/**
 * @file
 * Integration tests for the accuracy and performance harnesses —
 * these pin down the qualitative shape of every paper figure.
 */

#include <gtest/gtest.h>

#include "harness/accuracy.hpp"
#include "harness/performance.hpp"
#include "workloads/babi_like.hpp"
#include "workloads/squad_like.hpp"
#include "workloads/wikimovies_like.hpp"

namespace a3 {
namespace {

TEST(AccuracyHarness, ExactFloatTracksPaperBaselines)
{
    EngineConfig exact;
    exact.kind = EngineKind::ExactFloat;
    const auto all = makeAllWorkloads();
    for (const auto &w : all) {
        const std::size_t eps = w->selfAttention() ? 12 : 150;
        const AccuracyReport r = evaluateAccuracy(*w, exact, eps, 42);
        EXPECT_NEAR(r.metric, w->paperBaselineMetric(), 0.06)
            << w->name();
        // Exact attention considers every row.
        EXPECT_DOUBLE_EQ(r.normalizedCandidates, 1.0);
        EXPECT_DOUBLE_EQ(r.normalizedKept, 1.0);
        EXPECT_DOUBLE_EQ(r.recall, 1.0);
    }
}

TEST(AccuracyHarness, CandidateCountGrowsWithM)
{
    BabiLikeWorkload w;
    double prev = 0.0;
    for (double frac : {0.125, 0.25, 0.5, 1.0}) {
        EngineConfig cfg;
        cfg.kind = EngineKind::ApproxFloat;
        cfg.approx = ApproxConfig();
        cfg.approx.mFraction = frac;
        cfg.approx.postScoring = false;
        const AccuracyReport r = evaluateAccuracy(w, cfg, 150, 42);
        EXPECT_GT(r.normalizedCandidates, prev) << "M=" << frac;
        prev = r.normalizedCandidates;
    }
    EXPECT_LT(prev, 1.0);  // even M = n selects a strict subset
}

TEST(AccuracyHarness, RecallDegradesGracefullyWithM)
{
    WikiMoviesLikeWorkload w;
    double prevRecall = 0.0;
    for (double frac : {0.125, 0.5, 1.0}) {
        EngineConfig cfg;
        cfg.kind = EngineKind::ApproxFloat;
        cfg.approx = ApproxConfig();
        cfg.approx.mFraction = frac;
        cfg.approx.postScoring = false;
        const AccuracyReport r = evaluateAccuracy(w, cfg, 100, 42);
        EXPECT_GT(r.recall, prevRecall);
        prevRecall = r.recall;
    }
    EXPECT_GT(prevRecall, 0.9);
}

TEST(AccuracyHarness, KeptFractionShrinksWithT)
{
    WikiMoviesLikeWorkload w;
    double prev = 1.0;
    for (double t : {1.0, 5.0, 20.0}) {
        EngineConfig cfg;
        cfg.kind = EngineKind::ApproxFloat;
        cfg.approx = ApproxConfig();
        cfg.approx.candidateSelection = false;
        cfg.approx.thresholdPercent = t;
        const AccuracyReport r = evaluateAccuracy(w, cfg, 100, 42);
        EXPECT_LT(r.normalizedKept, prev) << "T=" << t;
        prev = r.normalizedKept;
    }
}

TEST(AccuracyHarness, ConservativeLosesLittleAggressiveMore)
{
    // Figure 13a shape: conservative within ~2 points of exact,
    // aggressive clearly below conservative for the big workloads.
    EngineConfig exact;
    exact.kind = EngineKind::ExactFloat;
    EngineConfig cons;
    cons.kind = EngineKind::ApproxFloat;
    cons.approx = ApproxConfig::conservative();
    EngineConfig aggr;
    aggr.kind = EngineKind::ApproxFloat;
    aggr.approx = ApproxConfig::aggressive();

    SquadLikeWorkload w;
    const AccuracyReport re = evaluateAccuracy(w, exact, 12, 42);
    const AccuracyReport rc = evaluateAccuracy(w, cons, 12, 42);
    const AccuracyReport ra = evaluateAccuracy(w, aggr, 12, 42);
    EXPECT_GT(rc.metric, re.metric - 0.08);
    EXPECT_LT(ra.metric, rc.metric);
    EXPECT_LT(ra.recall, rc.recall);
    EXPECT_LT(ra.normalizedKept, rc.normalizedKept);
}

TEST(AccuracyHarness, QuantizedExactCloseToFloatExact)
{
    // Section VI-B: f = 4 costs well under a point of accuracy.
    BabiLikeWorkload w;
    EngineConfig floatExact;
    floatExact.kind = EngineKind::ExactFloat;
    EngineConfig quantExact;
    quantExact.kind = EngineKind::ExactQuantized;
    quantExact.intBits = 4;
    quantExact.fracBits = 4;
    const AccuracyReport rf =
        evaluateAccuracy(w, floatExact, 150, 42);
    const AccuracyReport rq =
        evaluateAccuracy(w, quantExact, 150, 42);
    EXPECT_NEAR(rq.metric, rf.metric, 0.02);
}

TEST(AccuracyHarness, ApproxQuantizedRunsEndToEnd)
{
    WikiMoviesLikeWorkload w;
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxQuantized;
    cfg.approx = ApproxConfig::conservative();
    const AccuracyReport r = evaluateAccuracy(w, cfg, 40, 42);
    EXPECT_GT(r.metric, 0.4);
    EXPECT_LT(r.normalizedCandidates, 0.6);
}

TEST(PerfHarness, RowsInPresentationOrder)
{
    BabiLikeWorkload w;
    PerfOptions opts;
    opts.episodes = 3;
    opts.queriesPerEpisode = 6;
    const auto rows = evaluatePerformance(w, opts);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0].device, "CPU");
    EXPECT_EQ(rows[1].device, "GPU");
    EXPECT_EQ(rows[2].device, "Base A3");
    EXPECT_EQ(rows[3].device, "Approx A3 (conservative)");
    EXPECT_EQ(rows[4].device, "Approx A3 (aggressive)");
}

TEST(PerfHarness, GpuOnlyAvailableForSelfAttention)
{
    BabiLikeWorkload babi;
    PerfOptions opts;
    opts.episodes = 2;
    opts.queriesPerEpisode = 4;
    EXPECT_FALSE(evaluatePerformance(babi, opts)[1].available);

    SquadLikeWorkload squad;
    opts.episodes = 1;
    EXPECT_TRUE(evaluatePerformance(squad, opts)[1].available);
}

TEST(PerfHarness, Figure14Shape)
{
    // A3 beats CPU by orders of magnitude on the memory networks;
    // approximation increases throughput monotonically.
    BabiLikeWorkload w;
    PerfOptions opts;
    opts.episodes = 4;
    opts.queriesPerEpisode = 8;
    const auto rows = evaluatePerformance(w, opts);
    const double cpu = rows[0].opsPerSecond;
    const double base = rows[2].opsPerSecond;
    const double cons = rows[3].opsPerSecond;
    const double aggr = rows[4].opsPerSecond;
    EXPECT_GT(base / cpu, 100.0);
    EXPECT_GT(cons, base);
    EXPECT_GT(aggr, cons);
    // Latency improves with approximation too (Figure 14b).
    EXPECT_LT(rows[4].latencySeconds, rows[2].latencySeconds);
}

TEST(PerfHarness, Figure14BertShape)
{
    // GPU beats one A3 unit on BERT, but a handful of conservative
    // units reach it (the paper says 6-7).
    SquadLikeWorkload w;
    PerfOptions opts;
    opts.episodes = 1;
    const auto rows = evaluatePerformance(w, opts);
    const double gpu = rows[1].opsPerSecond;
    const double cons = rows[3].opsPerSecond;
    EXPECT_GT(gpu, rows[2].opsPerSecond);
    const double units = unitsToMatch(cons, gpu);
    EXPECT_GT(units, 3.0);
    EXPECT_LT(units, 12.0);
}

TEST(PerfHarness, Figure15EnergyShape)
{
    // Orders-of-magnitude ops/J advantage over CPU, and approximation
    // reduces energy per op further.
    BabiLikeWorkload w;
    PerfOptions opts;
    opts.episodes = 4;
    opts.queriesPerEpisode = 8;
    const auto rows = evaluatePerformance(w, opts);
    const double cpuOpsPerJoule = 1.0 / rows[0].energyPerOpJ;
    const double baseOpsPerJoule = 1.0 / rows[2].energyPerOpJ;
    EXPECT_GT(baseOpsPerJoule / cpuOpsPerJoule, 1e4);
    EXPECT_LT(rows[4].energyPerOpJ, rows[2].energyPerOpJ);
    // Breakdown populated for A3 rows.
    EXPECT_GT(rows[3].breakdown.candidateSelection, 0.0);
    EXPECT_DOUBLE_EQ(rows[2].breakdown.candidateSelection, 0.0);
}

}  // namespace
}  // namespace a3
