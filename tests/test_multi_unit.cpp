/**
 * @file
 * Tests for the multi-unit cluster model (Section III-C).
 */

#include <gtest/gtest.h>

#include "energy/power_model.hpp"
#include "sim/multi_unit.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

struct RandomTask
{
    Matrix key;
    Matrix value;
    std::vector<Vector> queries;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d, std::size_t queries)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    t.queries.resize(queries);
    for (auto &q : t.queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }
    return t;
}

SimConfig
baseConfig(std::size_t n)
{
    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    return cfg;
}

TEST(Cluster, SingleUnitMatchesAccelerator)
{
    Rng rng(9300);
    const RandomTask t = makeTask(rng, 64, 64, 8);

    A3Cluster cluster(baseConfig(64), 1);
    cluster.loadTask(t.key, t.value);
    const ClusterStats cs = cluster.runAll(t.queries);

    A3Accelerator solo(baseConfig(64));
    solo.loadTask(t.key, t.value);
    const RunStats rs = solo.runAll(t.queries);

    EXPECT_EQ(cs.queries, rs.queries);
    EXPECT_EQ(cs.makespan, rs.totalCycles);
    EXPECT_DOUBLE_EQ(cs.avgLatency, rs.avgLatency);
}

TEST(Cluster, DispatchIsBalanced)
{
    Rng rng(9301);
    const RandomTask t = makeTask(rng, 32, 64, 12);
    A3Cluster cluster(baseConfig(32), 4);
    cluster.loadTask(t.key, t.value);
    const ClusterStats cs = cluster.runAll(t.queries);
    ASSERT_EQ(cs.perUnitQueries.size(), 4u);
    for (std::uint64_t q : cs.perUnitQueries)
        EXPECT_EQ(q, 3u);
}

TEST(Cluster, ThroughputScalesNearLinearly)
{
    // Section VI-C: "using multiple A3 units can achieve near-perfect
    // scaling behavior" for self-attention-style batches.
    Rng rng(9302);
    const RandomTask t = makeTask(rng, 128, 64, 64);

    A3Cluster one(baseConfig(128), 1);
    one.loadTask(t.key, t.value);
    const double opsOne = one.runAll(t.queries).queriesPerSecond;

    A3Cluster four(baseConfig(128), 4);
    four.loadTask(t.key, t.value);
    const double opsFour = four.runAll(t.queries).queriesPerSecond;

    EXPECT_GT(opsFour / opsOne, 3.3);
    EXPECT_LT(opsFour / opsOne, 4.2);
}

TEST(Cluster, LatencyUnchangedByReplication)
{
    // Extra units multiply throughput but a single query still takes
    // one pipeline traversal.
    Rng rng(9303);
    const RandomTask t = makeTask(rng, 100, 64, 16);
    A3Cluster one(baseConfig(100), 1);
    one.loadTask(t.key, t.value);
    A3Cluster four(baseConfig(100), 4);
    four.loadTask(t.key, t.value);
    const double latOne = one.runAll(t.queries).avgLatency;
    const double latFour = four.runAll(t.queries).avgLatency;
    EXPECT_DOUBLE_EQ(latOne, latFour);
    EXPECT_DOUBLE_EQ(latOne, 327.0);  // 3n + 27
}

TEST(Cluster, EnergyScalesWithUnits)
{
    Rng rng(9304);
    const RandomTask t = makeTask(rng, 64, 64, 32);
    A3Cluster one(baseConfig(64), 1);
    one.loadTask(t.key, t.value);
    one.runAll(t.queries);
    A3Cluster two(baseConfig(64), 2);
    two.loadTask(t.key, t.value);
    two.runAll(t.queries);
    // Same total work split across two units: dynamic energy is equal
    // and static roughly halves per unit but runs on two units, so
    // the totals stay within ~20%.
    const double e1 = clusterEnergy(one);
    const double e2 = clusterEnergy(two);
    EXPECT_GT(e2, 0.8 * e1);
    EXPECT_LT(e2, 1.5 * e1);
}

}  // namespace
}  // namespace a3
