/**
 * @file
 * Tests for the flattened (query, shard) execution core: the
 * AttentionBackend work-unit contract (workUnitCount /
 * runUnitPartialInto / mergeUnitsInto), bit-identity of
 * engine-flattened batches against sequential per-query calls —
 * including mixed batches of sharded and unsharded sessions in one
 * drain, across thread counts — and the removal of the nested-
 * ThreadPool shape (concurrent engine passes over sharded backends
 * run under TSan with no pool borrowed inside a pool job).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "serving/sharded_backend.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::ExactFloat, EngineKind::ApproxFloat,
    EngineKind::ExactQuantized, EngineKind::ApproxQuantized};

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(FlattenedEngine, WorkUnitContractDefaults)
{
    Rng rng(21000);
    const std::size_t d = 12;
    for (const EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        const auto backend = makeBackend(
            cfg, randomMatrix(rng, 48, d), randomMatrix(rng, 48, d));
        // Every plain backend is a single unit, and the default
        // unit-partial path is exactly runPartialInto.
        EXPECT_EQ(backend->workUnitCount(), 1u);
        const Vector q = randomQuery(rng, d);
        PartialResult viaUnit;
        backend->runUnitPartialInto(0, q, viaUnit);
        AttentionResult merged;
        backend->mergeUnitsInto({viaUnit}, merged);
        PartialResult direct;
        backend->runPartialInto(q, direct);
        AttentionResult finalized;
        finalizePartialInto(direct, finalized);
        expectBitIdentical(merged, finalized);
    }
}

TEST(FlattenedEngine, ShardedUnitsMatchShards)
{
    Rng rng(21100);
    const std::size_t d = 10;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    ShardedConfig sharding;
    sharding.shardRows = 32;
    const ShardedBackend sharded(cfg, randomMatrix(rng, 100, d),
                                 randomMatrix(rng, 100, d), sharding);
    ASSERT_EQ(sharded.shardCount(), 4u);
    EXPECT_EQ(sharded.workUnitCount(), 4u);

    // Unit s computes shard s's partial; the fixed-order merge of
    // all the units is exactly the backend's own sequential answer.
    const Vector q = randomQuery(rng, d);
    std::vector<PartialResult> partials(sharded.workUnitCount());
    for (std::size_t u = 0; u < partials.size(); ++u)
        sharded.runUnitPartialInto(u, q, partials[u]);
    AttentionResult merged;
    sharded.mergeUnitsInto(partials, merged);
    expectBitIdentical(merged, sharded.run(q));
}

TEST(FlattenedEngine, SingleShardKeepsExactPathEveryKind)
{
    // S = 1 exposes one unit, so the engine routes the query through
    // the wrapped backend's exact runInto() — the bit-identity
    // guarantee that matters for the quantized kinds, whose partial
    // roundtrip is only ULP-bounded.
    Rng rng(21200);
    const std::size_t d = 8;
    for (const EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        const Matrix key = randomMatrix(rng, 40, d);
        const Matrix value = randomMatrix(rng, 40, d);
        ShardedConfig sharding;
        sharding.shardRows = 64;
        const ShardedBackend sharded(cfg, key, value, sharding);
        ASSERT_EQ(sharded.workUnitCount(), 1u);
        const auto plain = makeBackend(cfg, key, value);

        AttentionEngine engine(4);
        std::vector<Vector> queries;
        for (int i = 0; i < 6; ++i)
            queries.push_back(randomQuery(rng, d));
        const std::vector<AttentionResult> batched =
            engine.run(sharded, queries);
        for (std::size_t i = 0; i < queries.size(); ++i) {
            SCOPED_TRACE("query " + std::to_string(i));
            expectBitIdentical(batched[i], plain->run(queries[i]));
        }
    }
}

TEST(FlattenedEngine, MixedGroupsBitIdenticalAcrossThreadCounts)
{
    // One batch mixing multi-shard, single-shard, and plain groups:
    // the flattened work list interleaves all their units, and every
    // result must be bit-identical to the sequential per-query call
    // regardless of the engine's thread count.
    Rng rng(21300);
    const std::size_t d = 12;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;

    ShardedConfig wide;
    wide.shardRows = 48;
    const ShardedBackend big(cfg, randomMatrix(rng, 200, d),
                             randomMatrix(rng, 200, d), wide);
    ASSERT_GT(big.workUnitCount(), 1u);
    EngineConfig approxCfg;
    approxCfg.kind = EngineKind::ApproxFloat;
    const ShardedBackend medium(approxCfg, randomMatrix(rng, 96, d),
                                randomMatrix(rng, 96, d), wide);
    const auto plain = makeBackend(cfg, randomMatrix(rng, 64, d),
                                   randomMatrix(rng, 64, d));

    std::vector<AttentionRequestGroup> groups(3);
    groups[0].backend = &big;
    groups[1].backend = &medium;
    groups[2].backend = plain.get();
    for (int i = 0; i < 5; ++i)
        groups[0].queries.push_back(randomQuery(rng, d));
    for (int i = 0; i < 3; ++i)
        groups[1].queries.push_back(randomQuery(rng, d));
    for (int i = 0; i < 7; ++i)
        groups[2].queries.push_back(randomQuery(rng, d));

    for (const std::size_t threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        const AttentionEngine engine(threads);
        const auto results = engine.runGroups(groups);
        ASSERT_EQ(results.size(), groups.size());
        for (std::size_t g = 0; g < groups.size(); ++g) {
            ASSERT_EQ(results[g].size(), groups[g].queries.size());
            for (std::size_t i = 0; i < groups[g].queries.size();
                 ++i) {
                SCOPED_TRACE("group " + std::to_string(g) +
                             " query " + std::to_string(i));
                expectBitIdentical(
                    results[g][i],
                    groups[g].backend->run(groups[g].queries[i]));
            }
        }
    }
}

TEST(FlattenedEngine, CompletionHookFiresOncePerMultiUnitGroup)
{
    Rng rng(21400);
    const std::size_t d = 8;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    ShardedConfig sharding;
    sharding.shardRows = 24;
    const ShardedBackend sharded(cfg, randomMatrix(rng, 96, d),
                                 randomMatrix(rng, 96, d), sharding);
    const auto plain = makeBackend(cfg, randomMatrix(rng, 32, d),
                                   randomMatrix(rng, 32, d));

    std::vector<AttentionRequestGroup> groups(2);
    groups[0].backend = &sharded;
    groups[1].backend = plain.get();
    for (int i = 0; i < 4; ++i) {
        groups[0].queries.push_back(randomQuery(rng, d));
        groups[1].queries.push_back(randomQuery(rng, d));
    }

    const AttentionEngine engine(4);
    std::vector<std::vector<AttentionResult>> results;
    std::vector<std::atomic<int>> fired(groups.size());
    for (auto &f : fired)
        f.store(0);
    engine.runGroupsInto(groups, results,
                         [&fired](std::size_t g, double seconds) {
                             fired[g].fetch_add(1);
                             EXPECT_GE(seconds, 0.0);
                         });
    for (std::size_t g = 0; g < groups.size(); ++g)
        EXPECT_EQ(fired[g].load(), 1) << "group " << g;
}

TEST(FlattenedEngine, MixedDrainParallelBitIdenticalToSerial)
{
    // The serving-tier shape the tentpole exists for: sharded and
    // unsharded sessions coalesced into ONE drain, executed by a
    // multi-threaded engine, must answer every ticket bit-identical
    // to a single-threaded engine fed the same submissions.
    Rng rng(21500);
    const std::size_t d = 10;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    const Matrix hugeKey = randomMatrix(rng, 180, d);
    const Matrix hugeValue = randomMatrix(rng, 180, d);
    const Matrix smallKey = randomMatrix(rng, 48, d);
    const Matrix smallValue = randomMatrix(rng, 48, d);
    std::vector<Vector> hugeQueries;
    std::vector<Vector> smallQueries;
    for (int i = 0; i < 6; ++i) {
        hugeQueries.push_back(randomQuery(rng, d));
        smallQueries.push_back(randomQuery(rng, d));
    }

    const auto runTier = [&](std::size_t threads) {
        AttentionEngine engine(threads);
        SessionCache cache(64u << 20);
        ShardedConfig sharding;
        sharding.shardRows = 48;
        cache.insert("huge", makeShardedBackend(cfg, hugeKey,
                                                hugeValue, sharding));
        cache.insert("small", makeBackend(cfg, smallKey, smallValue));
        BatchScheduler scheduler(engine, cache);
        for (int i = 0; i < 6; ++i) {
            scheduler.submit("huge", hugeQueries[i]);
            scheduler.submit("small", smallQueries[i]);
        }
        return scheduler.drain();
    };

    const std::vector<ServingResult> parallel = runTier(4);
    const std::vector<ServingResult> serial = runTier(1);
    ASSERT_EQ(parallel.size(), 12u);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        SCOPED_TRACE("completion " + std::to_string(i));
        ASSERT_TRUE(parallel[i].ok());
        EXPECT_EQ(parallel[i].ticket, serial[i].ticket);
        EXPECT_EQ(parallel[i].session, serial[i].session);
        expectBitIdentical(parallel[i].result, serial[i].result);
    }
}

TEST(FlattenedEngine, WorkUnitsCountedPerDrain)
{
    Rng rng(21600);
    const std::size_t d = 8;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    AttentionEngine engine(2);
    SessionCache cache(64u << 20);
    ShardedConfig sharding;
    sharding.shardRows = 16;
    cache.insert("sharded",
                 makeShardedBackend(cfg, randomMatrix(rng, 64, d),
                                    randomMatrix(rng, 64, d),
                                    sharding));  // 4 shards
    cache.insert("plain", makeBackend(cfg, randomMatrix(rng, 16, d),
                                      randomMatrix(rng, 16, d)));
    BatchScheduler scheduler(engine, cache);
    for (int i = 0; i < 3; ++i) {
        scheduler.submit("sharded", randomQuery(rng, d));
        scheduler.submit("plain", randomQuery(rng, d));
    }
    ASSERT_EQ(scheduler.drain().size(), 6u);
    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.answered, 6u);
    // 3 queries × 4 shard units + 3 queries × 1 unit.
    EXPECT_EQ(stats.workUnits, 15u);
}

TEST(FlattenedEngine, NoNestedPoolUnderConcurrentEnginePasses)
{
    // The TSan regression for the removed nesting shape: two threads
    // drive batched passes over multi-shard backends through one
    // shared engine while a third queries a sharded backend
    // directly. Before the refactor each sharded query re-entered a
    // borrowed pool from inside an engine lane; now every shard
    // partial is a first-class unit on the engine's own work list,
    // and direct backend calls stay single-threaded. Results must
    // stay bit-identical throughout.
    Rng rng(21700);
    const std::size_t d = 8;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    ShardedConfig sharding;
    sharding.shardRows = 24;
    const ShardedBackend shardedA(cfg, randomMatrix(rng, 96, d),
                                  randomMatrix(rng, 96, d), sharding);
    const ShardedBackend shardedB(cfg, randomMatrix(rng, 72, d),
                                  randomMatrix(rng, 72, d), sharding);

    std::vector<Vector> queries;
    for (int i = 0; i < 8; ++i)
        queries.push_back(randomQuery(rng, d));
    const std::vector<AttentionResult> wantA =
        AttentionEngine(1).run(shardedA, queries);
    const std::vector<AttentionResult> wantB =
        AttentionEngine(1).run(shardedB, queries);

    AttentionEngine engine(4);
    std::atomic<bool> failed{false};
    const auto batchWorker = [&](const ShardedBackend &backend,
                                 const std::vector<AttentionResult>
                                     &want) {
        std::vector<AttentionResult> results;
        for (int pass = 0; pass < 6; ++pass) {
            engine.runInto(backend, queries, results);
            for (std::size_t i = 0; i < queries.size(); ++i) {
                if (results[i].output != want[i].output ||
                    results[i].weights != want[i].weights)
                    failed.store(true);
            }
        }
    };
    std::thread a(batchWorker, std::cref(shardedA),
                  std::cref(wantA));
    std::thread b(batchWorker, std::cref(shardedB),
                  std::cref(wantB));
    std::thread direct([&] {
        AttentionResult out;
        for (int pass = 0; pass < 6; ++pass) {
            for (std::size_t i = 0; i < queries.size(); ++i) {
                shardedA.runInto(queries[i], out);
                if (out.output != wantA[i].output)
                    failed.store(true);
            }
        }
    });
    a.join();
    b.join();
    direct.join();
    EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace a3
