/**
 * @file
 * Tests for the bit-accurate fixed-point pipeline (Section III-B) and
 * the Section VI-B quantization claims.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

struct RandomTask
{
    Matrix key;
    Matrix value;
    Vector query;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d, double scale = 1.0)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    t.query.resize(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal(0.0, scale));
            t.value(r, c) = static_cast<float>(rng.normal(0.0, scale));
        }
    }
    for (auto &x : t.query)
        x = static_cast<float>(rng.normal(0.0, scale));
    return t;
}

TEST(QuantizedAttention, WeightsApproximatelySumToOne)
{
    Rng rng(5000);
    const RandomTask t = makeTask(rng, 30, 16);
    const QuantizedAttention qa(4, 4, 30, 16);
    const AttentionResult r = qa.run(t.key, t.value, t.query);
    float sum = 0.0f;
    for (float w : r.weights)
        sum += w;
    // Truncating division loses at most one LSB per row.
    EXPECT_NEAR(sum, 1.0f, 30.0f / 256.0f);
}

TEST(QuantizedAttention, MatchesReferenceWithinBoundAtF8)
{
    Rng rng(5001);
    const RandomTask t = makeTask(rng, 20, 16);
    const QuantizedAttention qa(4, 8, 20, 16);
    const AttentionResult q = qa.run(t.key, t.value, t.query);
    const AttentionResult ref =
        referenceAttention(t.key, t.value, t.query);
    EXPECT_LT(maxAbsDiff(q.output, ref.output), 0.05f);
}

TEST(QuantizedAttention, ErrorDecreasesWithFractionBits)
{
    Rng rng(5002);
    double prevErr = 1e9;
    for (int f : {2, 4, 6, 8, 10}) {
        double worst = 0.0;
        Rng trialRng = rng.split();
        for (int trial = 0; trial < 10; ++trial) {
            const RandomTask t = makeTask(trialRng, 24, 16);
            const QuantizedAttention qa(4, f, 24, 16);
            const AttentionResult q = qa.run(t.key, t.value, t.query);
            const AttentionResult ref =
                referenceAttention(t.key, t.value, t.query);
            worst = std::max(
                worst,
                static_cast<double>(maxAbsDiff(q.output, ref.output)));
        }
        EXPECT_LT(worst, prevErr * 1.5)
            << "f=" << f;  // allow noise but require overall decay
        prevErr = std::min(prevErr, worst);
    }
    EXPECT_LT(prevErr, 0.02);
}

TEST(QuantizedAttention, SubsetRunNormalizesOverSubset)
{
    Rng rng(5003);
    const RandomTask t = makeTask(rng, 16, 8);
    const QuantizedAttention qa(4, 6, 16, 8);
    const std::vector<std::uint32_t> rows{2, 5, 11};
    const AttentionResult r = qa.run(t.key, t.value, t.query, rows);
    float sum = 0.0f;
    for (std::size_t row = 0; row < 16; ++row) {
        const bool in = std::find(rows.begin(), rows.end(),
                                  static_cast<std::uint32_t>(row)) !=
                        rows.end();
        if (!in) {
            EXPECT_FLOAT_EQ(r.weights[row], 0.0f);
            EXPECT_FLOAT_EQ(r.scores[row], 0.0f);
        }
        sum += r.weights[row];
    }
    EXPECT_NEAR(sum, 1.0f, 3.0f / 64.0f);
}

TEST(QuantizedAttention, ExtremeInputsDoNotOverflow)
{
    // Drive every element to the quantization range limits; the
    // Section III-B widths must absorb it (the run would panic on
    // overflow otherwise).
    const std::size_t n = 320;
    const std::size_t d = 64;
    Matrix key(n, d);
    Matrix value(n, d);
    Vector query(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = (r % 2) ? 15.9375f : -16.0f;
            value(r, c) = (c % 2) ? 15.9375f : -16.0f;
        }
    }
    for (std::size_t c = 0; c < d; ++c)
        query[c] = (c % 3) ? -16.0f : 15.9375f;

    const QuantizedAttention qa(4, 4, n, d);
    const AttentionResult r = qa.run(key, value, query);
    EXPECT_EQ(r.output.size(), d);
    for (float o : r.output) {
        EXPECT_GE(o, -16.0f - 1e-3f);
        EXPECT_LE(o, 16.0f + 1e-3f);  // convex combo of value range
    }
}

TEST(QuantizedAttention, TopWeightRowAgreesWithReference)
{
    // Quantization must not disturb which row wins when the margin is
    // clear (the basis of the <0.1% accuracy-loss claim).
    Rng rng(5004);
    int agreements = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        RandomTask t = makeTask(rng, 20, 16);
        // Plant a clear winner.
        for (std::size_t c = 0; c < 16; ++c)
            t.key(7, c) = t.query[c] * 0.5f;
        const QuantizedAttention qa(4, 4, 20, 16);
        const AttentionResult q = qa.run(t.key, t.value, t.query);
        const AttentionResult ref =
            referenceAttention(t.key, t.value, t.query);
        std::size_t qTop = 0;
        std::size_t rTop = 0;
        for (std::size_t row = 1; row < 20; ++row) {
            if (q.weights[row] > q.weights[qTop])
                qTop = row;
            if (ref.weights[row] > ref.weights[rTop])
                rTop = row;
        }
        agreements += (qTop == rTop);
    }
    EXPECT_GE(agreements, trials - 2);
}

TEST(QuantizedAttention, FormatsExposedMatchDerivation)
{
    const QuantizedAttention qa(4, 4, 320, 64);
    EXPECT_EQ(qa.formats().dotProduct.str(), "Q14.8");
    EXPECT_EQ(qa.formats().output.str(), "Q13.12");
    EXPECT_EQ(qa.expLut().outputFormat().str(), "Q0.8");
}

TEST(QuantizedAttention, DeterministicAcrossRuns)
{
    Rng rng(5005);
    const RandomTask t = makeTask(rng, 12, 8);
    const QuantizedAttention qa(4, 4, 12, 8);
    const AttentionResult a = qa.run(t.key, t.value, t.query);
    const AttentionResult b = qa.run(t.key, t.value, t.query);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
}

}  // namespace
}  // namespace a3
