/**
 * @file
 * Tests for the bit-accurate fixed-point pipeline (Section III-B) and
 * the Section VI-B quantization claims.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attention/backend.hpp"
#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "kernels/kernels.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

struct RandomTask
{
    Matrix key;
    Matrix value;
    Vector query;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d, double scale = 1.0)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    t.query.resize(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal(0.0, scale));
            t.value(r, c) = static_cast<float>(rng.normal(0.0, scale));
        }
    }
    for (auto &x : t.query)
        x = static_cast<float>(rng.normal(0.0, scale));
    return t;
}

TEST(QuantizedAttention, WeightsApproximatelySumToOne)
{
    Rng rng(5000);
    const RandomTask t = makeTask(rng, 30, 16);
    const QuantizedAttention qa(4, 4, 30, 16);
    const AttentionResult r = qa.run(t.key, t.value, t.query);
    float sum = 0.0f;
    for (float w : r.weights)
        sum += w;
    // Truncating division loses at most one LSB per row.
    EXPECT_NEAR(sum, 1.0f, 30.0f / 256.0f);
}

TEST(QuantizedAttention, MatchesReferenceWithinBoundAtF8)
{
    Rng rng(5001);
    const RandomTask t = makeTask(rng, 20, 16);
    const QuantizedAttention qa(4, 8, 20, 16);
    const AttentionResult q = qa.run(t.key, t.value, t.query);
    const AttentionResult ref =
        referenceAttention(t.key, t.value, t.query);
    EXPECT_LT(maxAbsDiff(q.output, ref.output), 0.05f);
}

TEST(QuantizedAttention, ErrorDecreasesWithFractionBits)
{
    Rng rng(5002);
    double prevErr = 1e9;
    for (int f : {2, 4, 6, 8, 10}) {
        double worst = 0.0;
        Rng trialRng = rng.split();
        for (int trial = 0; trial < 10; ++trial) {
            const RandomTask t = makeTask(trialRng, 24, 16);
            const QuantizedAttention qa(4, f, 24, 16);
            const AttentionResult q = qa.run(t.key, t.value, t.query);
            const AttentionResult ref =
                referenceAttention(t.key, t.value, t.query);
            worst = std::max(
                worst,
                static_cast<double>(maxAbsDiff(q.output, ref.output)));
        }
        EXPECT_LT(worst, prevErr * 1.5)
            << "f=" << f;  // allow noise but require overall decay
        prevErr = std::min(prevErr, worst);
    }
    EXPECT_LT(prevErr, 0.02);
}

TEST(QuantizedAttention, SubsetRunNormalizesOverSubset)
{
    Rng rng(5003);
    const RandomTask t = makeTask(rng, 16, 8);
    const QuantizedAttention qa(4, 6, 16, 8);
    const std::vector<std::uint32_t> rows{2, 5, 11};
    const AttentionResult r = qa.run(t.key, t.value, t.query, rows);
    float sum = 0.0f;
    for (std::size_t row = 0; row < 16; ++row) {
        const bool in = std::find(rows.begin(), rows.end(),
                                  static_cast<std::uint32_t>(row)) !=
                        rows.end();
        if (!in) {
            EXPECT_FLOAT_EQ(r.weights[row], 0.0f);
            EXPECT_FLOAT_EQ(r.scores[row], 0.0f);
        }
        sum += r.weights[row];
    }
    EXPECT_NEAR(sum, 1.0f, 3.0f / 64.0f);
}

TEST(QuantizedAttention, ExtremeInputsDoNotOverflow)
{
    // Drive every element to the quantization range limits; the
    // Section III-B widths must absorb it (the run would panic on
    // overflow otherwise).
    const std::size_t n = 320;
    const std::size_t d = 64;
    Matrix key(n, d);
    Matrix value(n, d);
    Vector query(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = (r % 2) ? 15.9375f : -16.0f;
            value(r, c) = (c % 2) ? 15.9375f : -16.0f;
        }
    }
    for (std::size_t c = 0; c < d; ++c)
        query[c] = (c % 3) ? -16.0f : 15.9375f;

    const QuantizedAttention qa(4, 4, n, d);
    const AttentionResult r = qa.run(key, value, query);
    EXPECT_EQ(r.output.size(), d);
    for (float o : r.output) {
        EXPECT_GE(o, -16.0f - 1e-3f);
        EXPECT_LE(o, 16.0f + 1e-3f);  // convex combo of value range
    }
}

TEST(QuantizedAttention, TopWeightRowAgreesWithReference)
{
    // Quantization must not disturb which row wins when the margin is
    // clear (the basis of the <0.1% accuracy-loss claim).
    Rng rng(5004);
    int agreements = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        RandomTask t = makeTask(rng, 20, 16);
        // Plant a clear winner.
        for (std::size_t c = 0; c < 16; ++c)
            t.key(7, c) = t.query[c] * 0.5f;
        const QuantizedAttention qa(4, 4, 20, 16);
        const AttentionResult q = qa.run(t.key, t.value, t.query);
        const AttentionResult ref =
            referenceAttention(t.key, t.value, t.query);
        std::size_t qTop = 0;
        std::size_t rTop = 0;
        for (std::size_t row = 1; row < 20; ++row) {
            if (q.weights[row] > q.weights[qTop])
                qTop = row;
            if (ref.weights[row] > ref.weights[rTop])
                rTop = row;
        }
        agreements += (qTop == rTop);
    }
    EXPECT_GE(agreements, trials - 2);
}

TEST(QuantizedAttention, FormatsExposedMatchDerivation)
{
    const QuantizedAttention qa(4, 4, 320, 64);
    EXPECT_EQ(qa.formats().dotProduct.str(), "Q14.8");
    EXPECT_EQ(qa.formats().output.str(), "Q13.12");
    EXPECT_EQ(qa.expLut().outputFormat().str(), "Q0.8");
}

TEST(QuantizedAttention, DeterministicAcrossRuns)
{
    Rng rng(5005);
    const RandomTask t = makeTask(rng, 12, 8);
    const QuantizedAttention qa(4, 4, 12, 8);
    const AttentionResult a = qa.run(t.key, t.value, t.query);
    const AttentionResult b = qa.run(t.key, t.value, t.query);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
}

// ---------------------------------------------------------------------
// Packed K/V storage (fixed/packed.hpp): lossless lanes, so every
// layout must match the Word32 pipeline bit for bit.
// ---------------------------------------------------------------------

/** (intBits, fracBits, layout Auto resolves to) triples under test. */
struct PackedCase
{
    int intBits;
    int fracBits;
    PackedKvFormat format;
};

const PackedCase kPackedCases[] = {
    {3, 4, PackedKvFormat::Int8},
    {2, 4, PackedKvFormat::Int8},
    {1, 2, PackedKvFormat::Int4},
    {2, 1, PackedKvFormat::Int4},
};

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
}

TEST(QuantizedPacked, AutoResolvesToNarrowestLosslessLane)
{
    EXPECT_EQ(resolvePackedKvFormat(PackedKvFormat::Auto, 1, 2),
              PackedKvFormat::Int4);
    EXPECT_EQ(resolvePackedKvFormat(PackedKvFormat::Auto, 3, 4),
              PackedKvFormat::Int8);
    EXPECT_EQ(resolvePackedKvFormat(PackedKvFormat::Auto, 4, 4),
              PackedKvFormat::Word32);
    // Explicit requests that fit resolve to themselves.
    EXPECT_EQ(resolvePackedKvFormat(PackedKvFormat::Int8, 3, 4),
              PackedKvFormat::Int8);
    EXPECT_EQ(resolvePackedKvFormat(PackedKvFormat::Int4, 1, 2),
              PackedKvFormat::Int4);
    EXPECT_EQ(resolvePackedKvFormat(PackedKvFormat::Word32, 12, 12),
              PackedKvFormat::Word32);
    EXPECT_STREQ(packedKvFormatName(PackedKvFormat::Int4), "int4");
    EXPECT_EQ(packedKvLaneBits(PackedKvFormat::Int8), 8);
}

TEST(QuantizedPacked, PackedBitIdenticalToWord32)
{
    Rng rng(5100);
    // Odd dims exercises the int4 pad nibble; 16 the aligned path.
    for (std::size_t d : {15u, 16u}) {
        for (const PackedCase &pc : kPackedCases) {
            SCOPED_TRACE(std::string("Q") + std::to_string(pc.intBits) +
                         "." + std::to_string(pc.fracBits) + " d=" +
                         std::to_string(d));
            const RandomTask t = makeTask(rng, 40, d);
            const QuantizedAttention word32(t.key, t.value, pc.intBits,
                                            pc.fracBits,
                                            PackedKvFormat::Word32);
            const QuantizedAttention packed(t.key, t.value, pc.intBits,
                                            pc.fracBits);
            ASSERT_EQ(packed.packedFormat(), pc.format);
            for (int q = 0; q < 4; ++q) {
                const RandomTask probe = makeTask(rng, 1, d);
                expectBitIdentical(word32.run(probe.query),
                                   packed.run(probe.query));
            }
        }
    }
}

TEST(QuantizedPacked, BoundPackedMatchesUnboundPipeline)
{
    Rng rng(5101);
    const RandomTask t = makeTask(rng, 24, 15);
    for (const PackedCase &pc : kPackedCases) {
        const QuantizedAttention unbound(pc.intBits, pc.fracBits, 24,
                                         15);
        const QuantizedAttention bound(t.key, t.value, pc.intBits,
                                       pc.fracBits);
        expectBitIdentical(unbound.run(t.key, t.value, t.query),
                           bound.run(t.query));
    }
}

TEST(QuantizedPacked, SubsetRunsBitIdenticalToWord32)
{
    Rng rng(5102);
    const RandomTask t = makeTask(rng, 30, 15);
    const std::vector<std::uint32_t> rows{1, 3, 3, 17, 29};
    for (const PackedCase &pc : kPackedCases) {
        const QuantizedAttention word32(t.key, t.value, pc.intBits,
                                        pc.fracBits,
                                        PackedKvFormat::Word32);
        const QuantizedAttention packed(t.key, t.value, pc.intBits,
                                        pc.fracBits);
        AttentionResult a;
        AttentionResult b;
        word32.runRowsInto(t.query, rows, a);
        packed.runRowsInto(t.query, rows, b);
        expectBitIdentical(a, b);
    }
}

TEST(QuantizedPacked, AppendMatchesFreshRebind)
{
    Rng rng(5103);
    for (std::size_t d : {15u, 16u}) {
        for (const PackedCase &pc : kPackedCases) {
            SCOPED_TRACE(std::string("Q") + std::to_string(pc.intBits) +
                         "." + std::to_string(pc.fracBits) + " d=" +
                         std::to_string(d));
            const RandomTask base = makeTask(rng, 20, d);
            const RandomTask extra1 = makeTask(rng, 5, d);
            const RandomTask extra2 = makeTask(rng, 3, d);

            QuantizedAttention grown(base.key, base.value, pc.intBits,
                                     pc.fracBits);
            grown.append(extra1.key, extra1.value);
            grown.append(extra2.key, extra2.value);

            Matrix allKey = base.key;
            allKey.appendRows(extra1.key);
            allKey.appendRows(extra2.key);
            Matrix allValue = base.value;
            allValue.appendRows(extra1.value);
            allValue.appendRows(extra2.value);
            const QuantizedAttention fresh(allKey, allValue, pc.intBits,
                                           pc.fracBits);

            ASSERT_EQ(grown.rows(), fresh.rows());
            EXPECT_EQ(grown.memoryBytes(), fresh.memoryBytes());
            const RandomTask probe = makeTask(rng, 1, d);
            expectBitIdentical(grown.run(probe.query),
                               fresh.run(probe.query));
        }
    }
}

TEST(QuantizedPacked, MemoryFootprintShrinksAsDocumented)
{
    Rng rng(5104);
    const std::size_t n = 320;
    const std::size_t d = 64;
    const RandomTask t = makeTask(rng, n, d);

    // The Word32 footprint is format-independent: 2 sides * 4 bytes.
    const QuantizedAttention word32(t.key, t.value, 4, 4);
    ASSERT_EQ(word32.packedFormat(), PackedKvFormat::Word32);
    EXPECT_EQ(word32.memoryBytes(), 2 * n * d * sizeof(std::int32_t));

    const QuantizedAttention int8(t.key, t.value, 3, 4);
    ASSERT_EQ(int8.packedFormat(), PackedKvFormat::Int8);
    EXPECT_EQ(int8.memoryBytes(),
              2 * n * d * sizeof(std::int8_t) + 2 * n * sizeof(float));
    EXPECT_LE(int8.memoryBytes() * 3, word32.memoryBytes());

    // Acceptance bound: int4-packed is <= 1/6 of the int32-word
    // footprint of the paper-default i=f=4 task.
    const QuantizedAttention int4(t.key, t.value, 1, 2);
    ASSERT_EQ(int4.packedFormat(), PackedKvFormat::Int4);
    EXPECT_EQ(int4.memoryBytes(),
              2 * n * ((d + 1) / 2) + 2 * n * sizeof(float));
    EXPECT_LE(int4.memoryBytes() * 6, word32.memoryBytes());

    // Per-row scale metadata: symmetric quantizer, one scale per row.
    EXPECT_EQ(int4.keyScales().size(), n);
    EXPECT_EQ(int4.valueScales().size(), n);
    EXPECT_FLOAT_EQ(int4.keyScales()[0], 0.25f);  // 2^-fracBits
}

TEST(QuantizedPacked, EveryIsaBitIdenticalOnPackedBackends)
{
    // The packed kernels are integer-exact, so unlike the float
    // tolerance class the full pipeline must agree bit for bit
    // across every available table.
    Rng rng(5105);
    const RandomTask t = makeTask(rng, 40, 33);
    const Kernels &original = activeKernels();
    for (const PackedCase &pc : kPackedCases) {
        const QuantizedAttention packed(t.key, t.value, pc.intBits,
                                        pc.fracBits);
        setActiveKernels(scalarKernels());
        const AttentionResult scalarResult = packed.run(t.query);
        for (KernelIsa isa : availableKernelIsas()) {
            SCOPED_TRACE(kernelIsaName(isa));
            setActiveKernels(kernelsFor(isa));
            expectBitIdentical(scalarResult, packed.run(t.query));
        }
    }
    setActiveKernels(original);
}

TEST(QuantizedPacked, MakeBackendPropagatesPackedFormat)
{
    Rng rng(5106);
    const RandomTask t = makeTask(rng, 20, 16);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactQuantized;
    cfg.intBits = 1;
    cfg.fracBits = 2;
    const auto backend = makeBackend(cfg, t.key, t.value);
    const auto *qa = dynamic_cast<const QuantizedAttention *>(
        backend.get());
    ASSERT_NE(qa, nullptr);
    EXPECT_EQ(qa->packedFormat(), PackedKvFormat::Int4);

    // The approx-quantized flow feeds the same packed datapath.
    cfg.kind = EngineKind::ApproxQuantized;
    const auto approx = makeBackend(cfg, t.key, t.value);
    const auto *aqa =
        dynamic_cast<const ApproxQuantizedAttention *>(approx.get());
    ASSERT_NE(aqa, nullptr);
    EXPECT_EQ(aqa->datapath().packedFormat(), PackedKvFormat::Int4);
}

TEST(QuantizedPackedDeath, MakeBackendRejectsTooNarrowLane)
{
    Rng rng(5107);
    const RandomTask t = makeTask(rng, 8, 8);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactQuantized;
    cfg.intBits = 4;
    cfg.fracBits = 4;  // 9-bit word
    cfg.packedKv = PackedKvFormat::Int8;
    EXPECT_EXIT(makeBackend(cfg, t.key, t.value),
                ::testing::ExitedWithCode(1), "8-bit packed K/V lane");

    cfg.intBits = 2;
    cfg.fracBits = 2;  // 5-bit word
    cfg.packedKv = PackedKvFormat::Int4;
    EXPECT_EXIT(makeBackend(cfg, t.key, t.value),
                ::testing::ExitedWithCode(1), "4-bit packed K/V lane");

    // Exactly at the lane width is accepted.
    cfg.intBits = 1;
    cfg.fracBits = 2;  // 4-bit word
    EXPECT_EQ(makeBackend(cfg, t.key, t.value)->memoryBytes(),
              2 * 8 * 4 + 2 * 8 * sizeof(float));
}

}  // namespace
}  // namespace a3
