/**
 * @file
 * Tests for the DRAM spill model (Section III-C, "Choice of n and d").
 */

#include <gtest/gtest.h>

#include "energy/power_model.hpp"
#include "sim/accelerator.hpp"
#include "sim/dram.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(DramModel, NoRowsNoStall)
{
    DramModel dram(100, 1);
    EXPECT_EQ(dram.stallCycles(320, 0), 0u);
}

TEST(DramModel, PrefetcherHidesLatencyBehindOnChipRows)
{
    // 320 on-chip rows give a 320-cycle head start > 100-cycle
    // latency: the paper's "without exposing memory latency".
    DramModel dram(100, 1);
    EXPECT_EQ(dram.stallCycles(320, 200), 0u);
}

TEST(DramModel, ShallowHeadStartExposesRampOnly)
{
    DramModel dram(100, 1);
    EXPECT_EQ(dram.stallCycles(40, 10), 60u);
}

TEST(DramModel, BandwidthLimitChargesPerRow)
{
    DramModel dram(100, 3);  // 3 cycles per streamed row
    EXPECT_EQ(dram.stallCycles(320, 50), 50u * 2u);
}

TEST(DramModel, EnergyCountsRows)
{
    DramModel dram;
    dram.recordReads(100);
    EXPECT_EQ(dram.reads(), 100u);
    EXPECT_DOUBLE_EQ(dram.energyJ(), 100.0 * DramModel::energyPerRowJ);
}

struct RandomTask
{
    Matrix key;
    Matrix value;
    Vector query;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    t.query.resize(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    for (auto &x : t.query)
        x = static_cast<float>(rng.normal());
    return t;
}

TEST(DramSpill, LargeTaskRunsWithHiddenLatency)
{
    // n = 500 on a 320-row SRAM: 180 rows stream from DRAM; with the
    // default timing the prefetcher hides everything, so the latency
    // formula 3n + 27 still holds.
    Rng rng(9400);
    const RandomTask t = makeTask(rng, 500, 64);
    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    A3Accelerator acc(cfg);
    acc.loadTask(t.key, t.value);
    acc.submitQuery(t.query);
    acc.drain();
    const RunStats stats = acc.stats();
    EXPECT_EQ(static_cast<Cycle>(stats.avgLatency), 3 * 500 + 27);
    EXPECT_EQ(acc.dram().reads(), 2u * 180u);  // dot + output stages
    EXPECT_EQ(acc.keySram().reads(), 320u);
}

TEST(DramSpill, BandwidthShortfallSlowsPipeline)
{
    Rng rng(9401);
    const RandomTask t = makeTask(rng, 400, 64);
    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    cfg.dramRowInterval = 2;  // DRAM delivers a row every 2 cycles
    A3Accelerator acc(cfg);
    acc.loadTask(t.key, t.value);
    acc.submitQuery(t.query);
    acc.drain();
    // 80 DRAM rows add 80 stall cycles in the dot and output stages.
    EXPECT_EQ(static_cast<Cycle>(acc.stats().avgLatency),
              3 * 400 + 27 + 2 * 80);
}

TEST(DramSpill, FunctionalResultUnaffected)
{
    Rng rng(9402);
    const RandomTask t = makeTask(rng, 450, 64);
    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    A3Accelerator acc(cfg);
    acc.loadTask(t.key, t.value);
    acc.submitQuery(t.query);
    acc.drain();
    auto out = acc.popOutput();
    ASSERT_TRUE(out.has_value());
    const AttentionResult expected =
        acc.datapath().run(t.key, t.value, t.query);
    EXPECT_EQ(out->result.output, expected.output);
}

TEST(DramSpill, DramEnergyEntersMemoryBucket)
{
    Rng rng(9403);
    const RandomTask t = makeTask(rng, 400, 64);
    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    A3Accelerator acc(cfg);
    acc.loadTask(t.key, t.value);
    acc.submitQuery(t.query);
    acc.drain();
    const EnergyBreakdown e = PowerModel::computeEnergy(acc);
    EXPECT_GE(e.memory, acc.dram().energyJ());
    EXPECT_GT(acc.dram().energyJ(), 0.0);
}

TEST(DramSpill, DisallowedWhenConfigured)
{
    SimConfig cfg;
    cfg.maxRows = 32;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    cfg.allowDramSpill = false;
    A3Accelerator acc(cfg);
    Matrix key(40, 64);
    Matrix value(40, 64);
    EXPECT_DEATH(acc.loadTask(key, value), "exceed capacity");
}

TEST(DramSpill, ApproxModeCannotSpill)
{
    SimConfig cfg;
    cfg.maxRows = 32;
    cfg.dims = 64;
    cfg.mode = A3Mode::Approx;
    A3Accelerator acc(cfg);
    Matrix key(40, 64);
    Matrix value(40, 64);
    EXPECT_DEATH(acc.loadTask(key, value), "sorted key");
}

}  // namespace
}  // namespace a3
