/**
 * @file
 * Tests for fixed-point arithmetic with hardware-style width growth.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fixed/value.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(FixedValue, FromDoubleQuantizes)
{
    const FixedValue v = FixedValue::fromDouble(1.5, {4, 4});
    EXPECT_EQ(v.raw, 24);
    EXPECT_DOUBLE_EQ(v.toDouble(), 1.5);
}

TEST(MulFull, ExactAndWidened)
{
    const FixedValue a = FixedValue::fromDouble(1.5, {4, 4});
    const FixedValue b = FixedValue::fromDouble(-2.25, {4, 4});
    const FixedValue p = mulFull(a, b);
    EXPECT_EQ(p.fmt.intBits, 8);
    EXPECT_EQ(p.fmt.fracBits, 8);
    EXPECT_DOUBLE_EQ(p.toDouble(), -3.375);
}

TEST(MulFull, WorstCaseDoesNotOverflow)
{
    FixedFormat in{4, 4};
    const FixedValue lo{in.minRaw(), in};
    const FixedValue p = mulFull(lo, lo);
    EXPECT_TRUE(p.fmt.fits(p.raw));
    EXPECT_DOUBLE_EQ(p.toDouble(), 15.9375 * 15.9375);
}

TEST(AddFull, ExactWithExtraIntegerBit)
{
    FixedFormat in{4, 4};
    const FixedValue hi{in.maxRaw(), in};
    const FixedValue sum = addFull(hi, hi);
    EXPECT_EQ(sum.fmt.intBits, 5);
    EXPECT_TRUE(sum.fmt.fits(sum.raw));
    EXPECT_DOUBLE_EQ(sum.toDouble(), 2.0 * in.maxValue());
}

TEST(SubFull, Exact)
{
    const FixedValue a = FixedValue::fromDouble(1.0, {4, 4});
    const FixedValue b = FixedValue::fromDouble(15.9375, {4, 4});
    const FixedValue diff = subFull(a, b);
    EXPECT_DOUBLE_EQ(diff.toDouble(), 1.0 - 15.9375);
    EXPECT_TRUE(diff.fmt.fits(diff.raw));
}

TEST(Rescale, WideningIsLossless)
{
    const FixedValue v = FixedValue::fromDouble(-3.1875, {4, 4});
    const FixedValue wide = rescale(v, {6, 8});
    EXPECT_DOUBLE_EQ(wide.toDouble(), v.toDouble());
}

TEST(Rescale, NarrowingTruncatesTowardNegativeInfinity)
{
    // 0.75 in Q4.4 -> Q4.1 keeps 0.5; -0.75 -> -1.0 (floor behaviour).
    const FixedValue pos = FixedValue::fromDouble(0.75, {4, 4});
    EXPECT_DOUBLE_EQ(rescale(pos, {4, 1}).toDouble(), 0.5);
    const FixedValue neg = FixedValue::fromDouble(-0.75, {4, 4});
    EXPECT_DOUBLE_EQ(rescale(neg, {4, 1}).toDouble(), -1.0);
}

TEST(Rescale, SaturatesIntoNarrowIntegerRange)
{
    const FixedValue v = FixedValue::fromDouble(15.0, {4, 4});
    const FixedValue narrow = rescale(v, {2, 4});
    EXPECT_DOUBLE_EQ(narrow.toDouble(), narrow.fmt.maxValue());
}

TEST(Divide, MatchesTruncatedQuotient)
{
    const FixedValue num = FixedValue::fromDouble(1.0, {0, 8});
    const FixedValue den = FixedValue::fromDouble(3.0, {4, 8});
    const FixedValue q = divide(num, den, 0, 8);
    // 1/3 = 0.3333 -> floor(0.3333 * 256) = 85 -> 0.33203125
    EXPECT_EQ(q.raw, 85);
    EXPECT_NEAR(q.toDouble(), 1.0 / 3.0, q.fmt.resolution());
}

TEST(Divide, WeightNeverExceedsOne)
{
    // score / expsum with score <= expsum must produce weight <= 1,
    // saturated into Q0.f (the Section III-B weight format).
    const FixedFormat scoreFmt{0, 8};
    const FixedFormat sumFmt{6, 8};
    const FixedValue score{scoreFmt.maxRaw(), scoreFmt};
    const FixedValue sum{scoreFmt.maxRaw(), sumFmt};
    const FixedValue w = divide(score, sum, 0, 8);
    EXPECT_LE(w.toDouble(), 1.0);
    EXPECT_GE(w.toDouble(), 0.99);
}

/** Property: divide() approximates real division within one LSB. */
class DivideProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DivideProperty, WithinOneLsb)
{
    const int f = GetParam();
    Rng rng(200 + static_cast<std::uint64_t>(f));
    const FixedFormat numFmt{0, f};
    const FixedFormat denFmt{6, f};
    for (int i = 0; i < 2000; ++i) {
        const double den = rng.uniform(1.0, 60.0);
        const double num = rng.uniform(0.0, 1.0) * den;
        const FixedValue nv = FixedValue::fromDouble(
            std::min(num, numFmt.maxValue()), numFmt);
        const FixedValue dv = FixedValue::fromDouble(den, denFmt);
        if (dv.raw == 0)
            continue;
        const FixedValue q = divide(nv, dv, 0, f);
        const double expected = nv.toDouble() / dv.toDouble();
        EXPECT_NEAR(q.toDouble(), expected,
                    std::ldexp(1.0, -f) + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(FractionBits, DivideProperty,
                         ::testing::Values(4, 6, 8, 10, 12));

/** Property: mul/add are exact vs double arithmetic on the grid. */
TEST(FixedValueProperty, MulAddExactOnGrid)
{
    Rng rng(300);
    const FixedFormat in{4, 4};
    for (int i = 0; i < 5000; ++i) {
        const FixedValue a{rng.uniformInt(in.minRaw(), in.maxRaw()),
                           in};
        const FixedValue b{rng.uniformInt(in.minRaw(), in.maxRaw()),
                           in};
        EXPECT_DOUBLE_EQ(mulFull(a, b).toDouble(),
                         a.toDouble() * b.toDouble());
        EXPECT_DOUBLE_EQ(addFull(a, b).toDouble(),
                         a.toDouble() + b.toDouble());
        EXPECT_DOUBLE_EQ(subFull(a, b).toDouble(),
                         a.toDouble() - b.toDouble());
    }
}

}  // namespace
}  // namespace a3
