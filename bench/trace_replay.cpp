/**
 * @file
 * Trace-driven traffic replay benchmark, emitted as one JSON object
 * with a "trace_replay" row per arrival scenario (poisson / diurnal
 * / bursty_4x).
 *
 * Each scenario generates a seeded trace (Zipf session popularity,
 * mixed context lengths, RAG + chat session mix, tight/loose
 * per-query deadlines) and replays it twice through the full
 * serving path — SessionCache + spilling ShardStore +
 * BatchScheduler with admission and deadlines — on a virtual clock
 * (see trace/replay.hpp). Because queue waits and deadline outcomes
 * are judged in virtual time, every reported metric is independent
 * of machine speed, and the "deterministic" column (1 iff the two
 * runs agree on every headline metric and on the FNV-1a hash over
 * all served results) is a hard bit-identity check the CI gate
 * holds at 1.
 *
 * Headline gated metrics (bench/baselines/ci_baseline.json):
 * deadline_hit_rate, shed_rate, p99_ms (virtual queue-wait p99),
 * store_hit_rate under the 4x burst, failed_queries == 0, and
 * deterministic == 1.
 *
 * Usage: trace_replay [--duration S] [--qps Q] [--sessions N]
 *                     [--strict]
 *   --duration S  virtual trace length in seconds (default 20)
 *   --qps Q       mean arrival rate (default 400; the replay's
 *                 service capacity is maxBatch/drainPeriod = 640)
 *   --sessions N  distinct sessions (default 64)
 *   --strict      exit nonzero on any failed query or
 *                 nondeterminism (the CI smoke mode)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attention/backend.hpp"
#include "bench_common.hpp"
#include "serving/shard_store.hpp"
#include "trace/generator.hpp"
#include "trace/replay.hpp"
#include "util/logging.hpp"

namespace {

using namespace a3;

/** Fresh unique spill directory; removed by the destructor. */
class TempSpillDir
{
  public:
    TempSpillDir()
    {
        char templ[] = "/tmp/a3_trace_bench_XXXXXX";
        const char *made = mkdtemp(templ);
        if (made == nullptr)
            fatal("mkdtemp failed for the bench spill dir");
        path_ = made;
    }

    ~TempSpillDir()
    {
        const std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

struct ScenarioRow
{
    std::string scenario;
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    double offeredQps = 0.0;
    double capacityQps = 0.0;
    ReplayReport report;
    bool deterministic = false;
};

/** The metrics two same-seed runs must agree on exactly. */
bool
sameMetrics(const ReplayReport &a, const ReplayReport &b)
{
    return a.served == b.served && a.shed() == b.shed() &&
           a.shedQueueFull == b.shedQueueFull &&
           a.shedSessionCap == b.shedSessionCap &&
           a.failedQueries == b.failedQueries &&
           a.recoveredDirect == b.recoveredDirect &&
           a.deadlineMet == b.deadlineMet &&
           a.deadlineMissed == b.deadlineMissed &&
           a.rebinds == b.rebinds &&
           a.cacheEvictions == b.cacheEvictions &&
           a.storeLiveHits == b.storeLiveHits &&
           a.storeSpillRestores == b.storeSpillRestores &&
           a.storeColdBinds == b.storeColdBinds &&
           a.queueWaitP50Ms == b.queueWaitP50Ms &&
           a.queueWaitP99Ms == b.queueWaitP99Ms &&
           a.resultHash == b.resultHash;
}

ScenarioRow
runScenario(const std::string &name, const TraceConfig &traceConfig,
            AttentionEngine &engine, const ReplayConfig &base,
            std::size_t cacheBudget)
{
    const Trace trace = generateTrace(traceConfig);

    auto runOnce = [&]() {
        // A fresh store + spill dir per run so both runs start
        // cold and their metrics are comparable bit-for-bit.
        TempSpillDir spillDir;
        ShardStoreConfig storeConfig;
        storeConfig.spillDir = spillDir.path();
        storeConfig.spillBudgetBytes = 256ull << 20;
        ShardStore store(storeConfig);

        ReplayConfig config = base;
        config.cacheByteBudget = cacheBudget;
        config.store = &store;
        return replayTrace(trace, engine, config);
    };

    ScenarioRow row;
    row.scenario = name;
    row.arrivals = traceConfig.arrivals;
    row.offeredQps = traceConfig.arrivalsPerSecond;
    row.capacityQps = static_cast<double>(base.maxBatch) /
                      base.drainPeriodSeconds;
    row.report = runOnce();
    row.deterministic = sameMetrics(row.report, runOnce());
    return row;
}

void
printRow(const ScenarioRow &row, bool last)
{
    const ReplayReport &r = row.report;
    std::printf(
        "    {\"scenario\": \"%s\", \"arrival\": \"%s\", "
        "\"offered_qps\": %.1f, \"capacity_qps\": %.1f, "
        "\"events\": %llu, \"queries\": %llu, \"binds\": %llu, "
        "\"appends\": %llu, \"rebinds\": %llu, \"served\": %llu, "
        "\"shed\": %llu, \"shed_rate\": %.4f, "
        "\"shed_queue_full\": %llu, \"shed_session_cap\": %llu, "
        "\"failed_queries\": %llu, \"recovered_direct\": %llu, "
        "\"deadline_hit_rate\": %.4f, "
        "\"deadline_missed\": %llu, \"queue_wait_p50_ms\": %.2f, "
        "\"queue_wait_p95_ms\": %.2f, \"p99_ms\": %.2f, "
        "\"queue_wait_max_ms\": %.2f, \"max_pending\": %zu, "
        "\"drain_ticks\": %llu, \"virtual_seconds\": %.2f, "
        "\"evictions\": %llu, \"store_hit_rate\": %.4f, "
        "\"store_live_hits\": %llu, \"store_spill_restores\": %llu, "
        "\"store_cold_binds\": %llu, \"result_hash\": %llu, "
        "\"deterministic\": %d}%s\n",
        row.scenario.c_str(), arrivalProcessName(row.arrivals),
        row.offeredQps, row.capacityQps,
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.queries),
        static_cast<unsigned long long>(r.binds),
        static_cast<unsigned long long>(r.appends),
        static_cast<unsigned long long>(r.rebinds),
        static_cast<unsigned long long>(r.served),
        static_cast<unsigned long long>(r.shed()), r.shedRate,
        static_cast<unsigned long long>(r.shedQueueFull),
        static_cast<unsigned long long>(r.shedSessionCap),
        static_cast<unsigned long long>(r.failedQueries),
        static_cast<unsigned long long>(r.recoveredDirect),
        r.deadlineHitRate,
        static_cast<unsigned long long>(r.deadlineMissed),
        r.queueWaitP50Ms, r.queueWaitP95Ms, r.queueWaitP99Ms,
        r.queueWaitMaxMs, r.maxPending,
        static_cast<unsigned long long>(r.drainTicks),
        r.virtualSeconds,
        static_cast<unsigned long long>(r.cacheEvictions),
        r.storeHitRate,
        static_cast<unsigned long long>(r.storeLiveHits),
        static_cast<unsigned long long>(r.storeSpillRestores),
        static_cast<unsigned long long>(r.storeColdBinds),
        static_cast<unsigned long long>(r.resultHash),
        row.deterministic ? 1 : 0, last ? "" : ",");
}

}  // namespace

int
main(int argc, char **argv)
{
    double duration = 20.0;
    double qps = 400.0;
    std::size_t sessionCount = 64;
    bool strict = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--duration") == 0) {
            if (i + 1 >= argc)
                fatal("--duration needs a value");
            duration = std::atof(argv[++i]);
            if (duration <= 0.0)
                fatal("--duration must be positive, got \"", argv[i],
                      "\"");
        } else if (std::strcmp(argv[i], "--qps") == 0) {
            if (i + 1 >= argc)
                fatal("--qps needs a value");
            qps = std::atof(argv[++i]);
            if (qps <= 0.0)
                fatal("--qps must be positive, got \"", argv[i],
                      "\"");
        } else if (std::strcmp(argv[i], "--sessions") == 0) {
            if (i + 1 >= argc)
                fatal("--sessions needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--sessions must be a positive integer, got "
                      "\"",
                      argv[i], "\"");
            sessionCount = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--strict") == 0) {
            strict = true;
        } else {
            fatal("unknown argument \"", argv[i], "\"");
        }
    }

    const std::size_t hw = std::max(
        1u, std::thread::hardware_concurrency());
    AttentionEngine engine(hw);

    ReplayConfig replay;
    replay.engine.kind = EngineKind::ExactQuantized;
    replay.dims = 32;
    replay.shardRows = 128;
    replay.maxBatch = 32;
    replay.drainPeriodSeconds = 0.05;
    replay.admission.maxQueueDepth = 160;
    replay.admission.maxPendingPerSession = 48;
    replay.schedulerDeadlineSeconds = 30.0;

    // Cache budget from a probe bind: room for ~24 mid-sized
    // sessions out of 64, so the Zipf tail churns the LRU and the
    // store's live/spill tiers absorb the re-binds.
    std::size_t bytesPerMidSession = 0;
    {
        const Matrix key = traceContentMatrix(1, 512, replay.dims);
        const Matrix value = traceValueMatrix(1, 512, replay.dims);
        const std::unique_ptr<AttentionBackend> probe =
            makeBackend(replay.engine, key, value);
        bytesPerMidSession = probe->memoryBytes();
    }
    const std::size_t cacheBudget = bytesPerMidSession * 24;

    TraceConfig base;
    base.seed = bench::benchSeed;
    base.durationSeconds = duration;
    base.arrivalsPerSecond = qps;
    base.sessionCount = static_cast<std::uint32_t>(sessionCount);
    base.zipfExponent = 1.1;
    base.documentCount = 12;
    base.ragFraction = 0.6;
    base.appendEveryQueries = 8;
    base.appendRows = 32;
    base.maxContextRows = 768;
    base.contextRows = {{128, 0.6}, {384, 0.3}, {1024, 0.1}};
    base.tightDeadlineFraction = 0.5;
    base.tightDeadlineSeconds = 0.15;
    base.looseDeadlineSeconds = 1.0;

    std::vector<ScenarioRow> rows;

    TraceConfig poisson = base;
    poisson.arrivals = ArrivalProcess::Poisson;
    rows.push_back(
        runScenario("poisson", poisson, engine, replay, cacheBudget));

    TraceConfig diurnal = base;
    diurnal.arrivals = ArrivalProcess::Diurnal;
    diurnal.diurnalPeriodSeconds = duration;
    diurnal.diurnalAmplitude = 0.8;
    rows.push_back(
        runScenario("diurnal", diurnal, engine, replay, cacheBudget));

    TraceConfig bursty = base;
    bursty.arrivals = ArrivalProcess::Bursty;
    bursty.burstFactor = 4.0;
    bursty.burstDutyCycle = 0.25;
    bursty.burstPeriodSeconds = std::max(1.0, duration / 4.0);
    rows.push_back(runScenario("bursty_4x", bursty, engine, replay,
                               cacheBudget));

    std::printf("{\n  \"trace_replay\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i)
        printRow(rows[i], i + 1 == rows.size());
    std::printf("  ]\n}\n");

    if (strict) {
        for (const ScenarioRow &row : rows) {
            if (row.report.failedQueries > 0)
                fatal("strict: scenario \"", row.scenario, "\" lost ",
                      row.report.failedQueries, " queries");
            if (!row.deterministic)
                fatal("strict: scenario \"", row.scenario,
                      "\" was not deterministic across two runs");
        }
    }
    return 0;
}
