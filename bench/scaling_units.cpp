/**
 * @file
 * Scaling studies from Section III-C / VI-C:
 *
 *  1. Multi-unit scaling on BERT-style self-attention: the paper
 *     argues a handful (6-7) of conservative approximate A3 units
 *     overtake the Titan V because self-attention parallelism scales
 *     near-perfectly across units. We sweep 1-8 replicated units and
 *     print aggregate throughput against the GPU model line.
 *
 *  2. Large-n DRAM spill: with n beyond the 320-row SRAM, rows stream
 *     from DRAM through a prefetcher. At full bandwidth the latency
 *     formula 3n + 27 is preserved exactly ("without exposing memory
 *     latency"); halving the bandwidth exposes per-row stalls.
 */

#include <cstdio>

#include "baseline/device_models.hpp"
#include "bench_common.hpp"
#include "energy/power_model.hpp"
#include "sim/multi_unit.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "workloads/squad_like.hpp"

namespace {

using namespace a3;

void
unitScaling()
{
    SquadLikeWorkload workload;
    Rng rng(bench::benchSeed);
    const AttentionTask task = workload.sample(rng);

    GpuTimingModel gpu;
    const double gpuOps =
        1.0 / gpu.batchedSeconds(320, 64, 320) / 1e6;

    Table table("Multi-unit scaling on BERT self-attention "
                "(conservative approx)");
    table.setHeader({"units", "Mops/s", "scaling", "vs GPU",
                     "total nJ/op"});
    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = A3Mode::Approx;
    cfg.approx = ApproxConfig::conservative();

    double opsOne = 0.0;
    for (std::size_t units = 1; units <= 8; ++units) {
        A3Cluster cluster(cfg, units);
        cluster.loadTask(task.key, task.value);
        const ClusterStats stats = cluster.runAll(task.queries);
        const double mops = stats.queriesPerSecond / 1e6;
        if (units == 1)
            opsOne = mops;
        table.addRow(
            {std::to_string(units), Table::num(mops, 2),
             Table::ratio(mops / opsOne),
             Table::ratio(mops / gpuOps),
             Table::num(clusterEnergy(cluster) * 1e9 /
                            static_cast<double>(stats.queries),
                        2)});
    }
    table.print();
    std::printf("GPU model: %.2f Mops/s; paper expects 6-7 "
                "conservative units to reach it.\n\n",
                gpuOps);
}

void
dramSpill()
{
    Table table("Large-n DRAM spill (base A3, 320-row SRAM)");
    table.setHeader({"n", "DRAM rows", "latency full-bw", "3n+27",
                     "latency half-bw"});
    Rng rng(bench::benchSeed);
    for (std::size_t n : {320u, 400u, 512u, 768u, 1024u}) {
        Matrix key(n, 64);
        Matrix value(n, 64);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < 64; ++c) {
                key(r, c) = static_cast<float>(rng.normal());
                value(r, c) = static_cast<float>(rng.normal());
            }
        }
        Vector query(64);
        for (auto &x : query)
            x = static_cast<float>(rng.normal());

        auto latencyWith = [&](Cycle interval) {
            SimConfig cfg;
            cfg.maxRows = 320;
            cfg.dims = 64;
            cfg.mode = A3Mode::Base;
            cfg.dramRowInterval = interval;
            A3Accelerator acc(cfg);
            acc.loadTask(key, value);
            acc.submitQuery(query);
            acc.drain();
            return acc.stats().avgLatency;
        };
        table.addRow({std::to_string(n),
                      std::to_string(n > 320 ? n - 320 : 0),
                      Table::num(latencyWith(1), 0),
                      std::to_string(3 * n + 27),
                      Table::num(latencyWith(2), 0)});
    }
    table.print();
    std::printf("Full-bandwidth DRAM streaming preserves 3n+27 "
                "exactly (prefetcher hides the 100-cycle\nlatency "
                "behind the 320 on-chip rows); half bandwidth adds "
                "one stall cycle per DRAM row\nin each streaming "
                "stage.\n");
}

}  // namespace

int
main()
{
    unitScaling();
    dramSpill();
    return 0;
}
