/**
 * @file
 * Figure 13: the combined approximation scheme — conservative
 * (M = n/2, T = 5%) and aggressive (M = n/8, T = 10%).
 *
 * Panel (a): task metric per configuration. Panel (b): portion of the
 * true top-2 (bAbI) / top-5 (others) entries still selected.
 */

#include "bench_common.hpp"
#include "harness/accuracy.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    // Paper values {base, conservative, aggressive} (Figure 13a).
    const double paperMetric[3][3] = {
        {0.826, 0.816, 0.730},
        {0.620, 0.604, 0.545},
        {0.888, 0.875, 0.805},
    };

    const auto workloads = makeAllWorkloads();
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = *workloads[wi];
        const std::size_t episodes = bench::episodesFor(w);

        Table table("Figure 13 (" + w.name() + ", metric: " +
                    w.metricName() + ", top-" +
                    std::to_string(w.recallTopK()) + " recall)");
        table.setHeader({"config", "metric", "paper",
                         "top-k recall (13b)", "C/n", "K/n"});

        const struct
        {
            const char *label;
            EngineConfig cfg;
        } configs[] = {
            {"Base A3 (exact)",
             {EngineKind::ExactFloat, ApproxConfig::exact(), 4, 4}},
            {"Approx A3 (conservative)",
             {EngineKind::ApproxFloat, ApproxConfig::conservative(), 4,
              4}},
            {"Approx A3 (aggressive)",
             {EngineKind::ApproxFloat, ApproxConfig::aggressive(), 4,
              4}},
        };

        for (std::size_t c = 0; c < 3; ++c) {
            const AccuracyReport r = evaluateAccuracy(
                w, configs[c].cfg, episodes, bench::benchSeed);
            table.addRow({configs[c].label, Table::num(r.metric),
                          Table::num(paperMetric[wi][c]),
                          Table::num(r.recall),
                          Table::num(r.normalizedCandidates),
                          Table::num(r.normalizedKept)});
        }
        table.print();
    }
    return 0;
}
