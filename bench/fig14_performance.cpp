/**
 * @file
 * Figure 14: normalized throughput and latency of an attention
 * operation across CPU, GPU, base A3, and the two approximate A3
 * configurations, per workload.
 *
 * Throughput (panel a) is normalized to the CPU, with the ratio to
 * base A3 shown alongside (the paper annotates the bars with the
 * base-A3-normalized values). Latency (panel b) is normalized to base
 * A3. BERT's approximate configurations include the amortized key-
 * sorting preprocessing overhead, as in Section VI-C.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "harness/performance.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    // Paper's base-A3-normalized throughput annotations (Figure 14a):
    // {base, conservative, aggressive}.
    const double paperThroughput[3][3] = {
        {1.0, 1.39, 2.62},
        {1.0, 2.01, 7.03},
        {1.0, 1.85, 5.69},
    };

    const auto workloads = makeAllWorkloads();
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = *workloads[wi];
        PerfOptions opts;
        opts.episodes = w.selfAttention() ? 4 : 16;
        opts.queriesPerEpisode = 16;
        opts.seed = bench::benchSeed;
        const auto rows = evaluatePerformance(w, opts);

        const double cpuOps = rows[0].opsPerSecond;
        const double baseOps = rows[2].opsPerSecond;
        const double baseLat = rows[2].latencySeconds;

        Table table("Figure 14 (" + w.name() + ")");
        table.setHeader({"device", "Mops/s", "vs CPU (14a)",
                         "vs BaseA3", "paper", "latency us",
                         "vs BaseA3 (14b)"});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const PerfResult &r = rows[i];
            if (!r.available) {
                table.addRow({r.device, "-", "model not available",
                              "-", "-", "-", "-"});
                continue;
            }
            std::string paper = "-";
            if (i >= 2)
                paper = Table::ratio(paperThroughput[wi][i - 2]);
            table.addRow(
                {r.device, Table::num(r.opsPerSecond / 1e6, 3),
                 Table::ratio(r.opsPerSecond / cpuOps, 1),
                 Table::ratio(r.opsPerSecond / baseOps),
                 paper, Table::num(r.latencySeconds * 1e6, 3),
                 Table::ratio(r.latencySeconds / baseLat)});
        }
        table.print();

        if (w.selfAttention() && rows[1].available) {
            const double units =
                unitsToMatch(rows[3].opsPerSecond,
                             rows[1].opsPerSecond);
            std::printf("A3 units (conservative) to match the GPU on "
                        "%s: %.1f (paper: 6-7)\n\n",
                        w.name().c_str(), units);
        }
    }
    return 0;
}
