/**
 * @file
 * Figure 11: impact of the greedy candidate-selection scheme across
 * iteration counts M in {n, 3/4n, 1/2n, 1/4n, 1/8n}.
 *
 * Panel (a): end-to-end task metric. Panel (b): number of selected
 * candidates normalized to n. Post-scoring is disabled so the sweep
 * isolates candidate selection, matching the paper's methodology.
 */

#include "bench_common.hpp"
#include "harness/accuracy.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    // Paper values for panel (a), per workload, in sweep order
    // {no-approx, M=n, 3/4n, 1/2n, 1/4n, 1/8n} (Figure 11a labels).
    const double paperMetric[3][6] = {
        {0.826, 0.827, 0.825, 0.815, 0.780, 0.730},
        {0.620, 0.621, 0.620, 0.601, 0.567, 0.545},
        {0.888, 0.890, 0.884, 0.889, 0.879, 0.824},
    };
    const double fractions[] = {1.0, 0.75, 0.5, 0.25, 0.125};
    const char *labels[] = {"M=n", "M=3/4n", "M=1/2n", "M=1/4n",
                            "M=1/8n"};

    const auto workloads = makeAllWorkloads();
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = *workloads[wi];
        const std::size_t episodes = bench::episodesFor(w);

        Table table("Figure 11 (" + w.name() + ", metric: " +
                    w.metricName() + ")");
        table.setHeader({"config", "metric", "paper",
                         "norm. candidates (11b)"});

        EngineConfig exact;
        exact.kind = EngineKind::ExactFloat;
        const AccuracyReport base =
            evaluateAccuracy(w, exact, episodes, bench::benchSeed);
        table.addRow({"No Approximation", Table::num(base.metric),
                      Table::num(paperMetric[wi][0]), "1.000"});

        for (std::size_t f = 0; f < 5; ++f) {
            EngineConfig cfg;
            cfg.kind = EngineKind::ApproxFloat;
            cfg.approx = ApproxConfig();
            cfg.approx.mFraction = fractions[f];
            cfg.approx.postScoring = false;
            const AccuracyReport r =
                evaluateAccuracy(w, cfg, episodes, bench::benchSeed);
            table.addRow({labels[f], Table::num(r.metric),
                          Table::num(paperMetric[wi][f + 1]),
                          Table::num(r.normalizedCandidates)});
        }
        table.print();
    }
    return 0;
}
