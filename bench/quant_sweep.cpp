/**
 * @file
 * Section VI-B quantization study: task-metric impact of the input
 * fraction-bit width f, using the bit-accurate fixed-point pipeline.
 *
 * The paper reports that f = 4 costs less than 0.1% accuracy across
 * all workloads; this sweep regenerates that claim and shows the
 * degradation cliff at very small f.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "harness/accuracy.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    const int fracBits[] = {2, 3, 4, 6, 8};
    const auto workloads = makeAllWorkloads();
    for (const auto &wptr : workloads) {
        const Workload &w = *wptr;
        const std::size_t episodes = bench::episodesFor(w);

        EngineConfig exact;
        exact.kind = EngineKind::ExactFloat;
        const AccuracyReport base =
            evaluateAccuracy(w, exact, episodes, bench::benchSeed);

        Table table("Quantization sweep (" + w.name() + ", metric: " +
                    w.metricName() + ")");
        table.setHeader({"config", "metric", "delta vs float"});
        table.addRow({"float (reference)", Table::num(base.metric),
                      "-"});
        for (int f : fracBits) {
            EngineConfig cfg;
            cfg.kind = EngineKind::ExactQuantized;
            cfg.intBits = 4;
            cfg.fracBits = f;
            const AccuracyReport r =
                evaluateAccuracy(w, cfg, episodes, bench::benchSeed);
            table.addRow({"i=4, f=" + std::to_string(f),
                          Table::num(r.metric),
                          Table::num(r.metric - base.metric, 4)});
        }
        table.print();
    }
    std::printf("Paper claim: f = 4 degrades accuracy by less than "
                "0.1%% on every workload (Section VI-B).\n");
    return 0;
}
