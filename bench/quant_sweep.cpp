/**
 * @file
 * Section VI-B quantization study: task-metric impact of the input
 * fraction-bit width f, using the bit-accurate fixed-point pipeline.
 *
 * The paper reports that f = 4 costs less than 0.1% accuracy across
 * all workloads; this sweep regenerates that claim and shows the
 * degradation cliff at very small f.
 *
 * Each row also reports the packed K/V layout the configuration's
 * Auto resolution selects (fixed/packed.hpp) and the bound-task
 * footprint it implies at the representative 320 x 64 BERT shape —
 * packing is lossless, so the metric column is identical across
 * layouts and the kv columns show what the accuracy of that row
 * costs to hold in memory. The int4-eligible configs (word width
 * <= 4 bits) are swept explicitly at the bottom of each table.
 */

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "fixed/packed.hpp"
#include "harness/accuracy.hpp"
#include "util/table.hpp"

namespace {

using namespace a3;

/**
 * Bound-task K/V bytes at the representative 320 x 64 shape:
 * key + value lane arrays plus the per-row float scales the packed
 * layouts carry (QuantizedAttention::memoryBytes mirrors this).
 */
std::string
kvBytesAt320x64(PackedKvFormat resolved)
{
    const std::size_t n = 320;
    const std::size_t d = 64;
    std::size_t bytes = 2 * n * packedRowBytes(resolved, d);
    if (resolved != PackedKvFormat::Word32)
        bytes += 2 * n * sizeof(float);
    return std::to_string(bytes);
}

}  // namespace

int
main()
{
    struct QuantPoint
    {
        int intBits;
        int fracBits;
    };
    // The paper's f sweep at i = 4, then the int4-eligible corner
    // (i + f + 1 <= 4) the packed storage layer adds.
    const QuantPoint points[] = {{4, 2}, {4, 3}, {4, 4}, {4, 6},
                                 {4, 8}, {1, 2}, {2, 1}};

    const auto workloads = makeAllWorkloads();
    for (const auto &wptr : workloads) {
        const Workload &w = *wptr;
        const std::size_t episodes = bench::episodesFor(w);

        EngineConfig exact;
        exact.kind = EngineKind::ExactFloat;
        const AccuracyReport base =
            evaluateAccuracy(w, exact, episodes, bench::benchSeed);

        Table table("Quantization sweep (" + w.name() + ", metric: " +
                    w.metricName() + ")");
        table.setHeader({"config", "kv format", "kv bytes @320x64",
                         "metric", "delta vs float"});
        table.addRow({"float (reference)", "float32",
                      kvBytesAt320x64(PackedKvFormat::Word32),
                      Table::num(base.metric), "-"});
        for (const QuantPoint p : points) {
            EngineConfig cfg;
            cfg.kind = EngineKind::ExactQuantized;
            cfg.intBits = p.intBits;
            cfg.fracBits = p.fracBits;
            const PackedKvFormat resolved = resolvePackedKvFormat(
                cfg.packedKv, p.intBits, p.fracBits);
            const AccuracyReport r =
                evaluateAccuracy(w, cfg, episodes, bench::benchSeed);
            table.addRow({"i=" + std::to_string(p.intBits) +
                              ", f=" + std::to_string(p.fracBits),
                          packedKvFormatName(resolved),
                          kvBytesAt320x64(resolved),
                          Table::num(r.metric),
                          Table::num(r.metric - base.metric, 4)});
        }
        table.print();
    }
    std::printf("Paper claim: f = 4 degrades accuracy by less than "
                "0.1%% on every workload (Section VI-B).\n");
    std::printf("Packing is lossless: for a given (i, f) the metric "
                "is bit-identical across kv formats; only the "
                "footprint changes.\n");
    return 0;
}
