/**
 * @file
 * Overload and fairness sweep of the admission-controlled serving
 * tier, emitted as one JSON object with an "overload" row array.
 *
 * Four sessions share one BatchScheduler behind a bounded admission
 * policy; one hot session offers roughly half the traffic, three
 * cold sessions split the rest, and the hot session carries weight 2
 * against the cold sessions' weight 1. Each row sweeps the offered
 * load — a multiple of the per-drain capacity — past saturation and
 * reports, per multiplier:
 *
 *  - shed_rate: rejected / offered submits. Admission decisions are
 *    count-based and the submit/drain rounds are synchronous, so the
 *    admitted/rejected split is deterministic across machines.
 *  - fair_share_min / starvation_ratio: each session's completion
 *    share divided by its weight share; the minimum is the
 *    starvation bound (>= 0.5 means no session fell below half its
 *    fair weight) and max/min is the spread.
 *  - max_pending: the deepest the queue ever got — bounded by the
 *    policy's queue depth by construction.
 *  - queue-wait p50/p95/p99 and drain-service p95 from the
 *    scheduler's latency reservoirs.
 *  - deadline_hit_rate: every submit carries a 0.75 s deadline, and
 *    the hit rate is ok / (ok + expired) over the completions. The
 *    synchronous submit/drain rounds keep queue waits far below the
 *    budget, so the expected rate is exactly 1.0 even at 4x — a
 *    regression here means requests started blowing their deadline
 *    budget inside a single round.
 *
 * A second "adaptive" section re-runs the 4x point with
 * targetLatencySeconds set, reporting whether the adaptive queue
 * depth engaged (derived from target / observed p95 service time
 * after the first drain) and the typed rejection counts it produced.
 *
 * Usage: overload_fairness [out.csv] [--rounds N] [--max-batch B]
 *                          [--rows N]
 *   --rounds N     submit/drain rounds per multiplier (default 40)
 *   --max-batch B  drain capacity (default 32)
 *   --rows N       context rows per session (default 320)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "attention/backend.hpp"
#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using namespace a3;

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

struct OverloadRow
{
    double offeredMultiplier = 0.0;
    const char *regime = "under";
    std::size_t rounds = 0;
    std::size_t maxBatch = 0;
    std::size_t queueDepth = 0;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    double shedRate = 0.0;
    std::uint64_t answered = 0;
    std::size_t maxPending = 0;
    double fairShareMin = 0.0;
    double fairShareMax = 0.0;
    double starvationRatio = 0.0;
    double queueWaitP50 = 0.0;
    double queueWaitP95 = 0.0;
    double queueWaitP99 = 0.0;
    double drainServiceP95 = 0.0;
    std::uint64_t deadlineShed = 0;
    double deadlineHitRate = 0.0;
};

/** Deadline every benchmark submit carries (seconds). Generous
 *  against the synchronous rounds' queue waits by ~two orders of
 *  magnitude, so the expected hit rate is exactly 1.0. */
constexpr double kDeadlineSeconds = 0.75;

OverloadRow
measureOverload(AttentionEngine &engine, double multiplier,
                std::size_t rounds, std::size_t maxBatch,
                std::size_t rows, std::size_t d)
{
    const std::size_t sessions = 4;
    const std::size_t hotWeight = 2;
    const std::size_t weightSum = hotWeight + (sessions - 1);

    Rng rng(bench::benchSeed + 7);
    EngineConfig config;
    config.kind = EngineKind::ApproxFloat;
    SessionCache cache;
    std::vector<std::string> ids;
    std::vector<SessionHandle> handles;
    for (std::size_t s = 0; s < sessions; ++s) {
        ids.push_back("session-" + std::to_string(s));
        handles.push_back(
            cache.bindSession(ids.back(), config,
                              randomMatrix(rng, rows, d),
                              randomMatrix(rng, rows, d))
                .handle);
    }

    AdmissionPolicy policy;
    policy.maxQueueDepth = 4 * maxBatch;
    policy.maxPendingPerSession = maxBatch;
    BatchScheduler scheduler(engine, cache, maxBatch, policy);
    scheduler.setSessionWeight(ids[0], hotWeight);

    // Offered load per round: the hot session offers roughly half,
    // the cold sessions split the rest evenly. Submission interleaves
    // the sessions round-robin so queue-full rejections spread
    // instead of always hitting whoever submits last.
    const std::size_t offeredPerRound = std::max<std::size_t>(
        sessions, static_cast<std::size_t>(
                      multiplier * static_cast<double>(maxBatch)));
    std::vector<std::size_t> offerOf(sessions);
    const std::size_t coldEach = std::max<std::size_t>(
        1, offeredPerRound / (2 * (sessions - 1)));
    for (std::size_t s = 1; s < sessions; ++s)
        offerOf[s] = coldEach;
    offerOf[0] = offeredPerRound - coldEach * (sessions - 1);

    Vector query(d);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    OverloadRow row;
    row.offeredMultiplier = multiplier;
    row.regime = multiplier > 1.0 ? "over" : "under";
    row.rounds = rounds;
    row.maxBatch = maxBatch;
    row.queueDepth = policy.maxQueueDepth;
    std::map<std::string, std::uint64_t> answeredOf;
    for (std::size_t round = 0; round < rounds; ++round) {
        std::vector<std::size_t> remaining = offerOf;
        bool exhausted = false;
        while (!exhausted) {
            exhausted = true;
            for (std::size_t s = 0; s < sessions; ++s) {
                if (remaining[s] == 0)
                    continue;
                --remaining[s];
                exhausted = false;
                ++row.offered;
                SubmitOptions options;
                options.deadlineSeconds = kDeadlineSeconds;
                if (scheduler.submit(handles[s], query, options)
                        .admitted())
                    ++row.admitted;
            }
        }
        row.maxPending = std::max(row.maxPending, scheduler.pending());
        if (scheduler.pending() > policy.maxQueueDepth)
            fatal("queue depth bound violated");
        for (const ServingResult &done : scheduler.drain()) {
            if (!done.ok()) {
                if (done.error != ServingError::DeadlineExpired)
                    fatal("unexpected serving error: ",
                          servingErrorName(done.error));
                ++row.deadlineShed;
                continue;
            }
            ++answeredOf[done.session];
            ++row.answered;
        }
    }
    row.rejected = row.offered - row.admitted;
    row.shedRate = row.offered > 0
                       ? static_cast<double>(row.rejected) /
                             static_cast<double>(row.offered)
                       : 0.0;

    // Completion share of each session, normalized by its weight
    // share: 1.0 means exactly the fair weighted share.
    double minRatio = 0.0;
    double maxRatio = 0.0;
    for (std::size_t s = 0; s < sessions; ++s) {
        const double share =
            row.answered > 0
                ? static_cast<double>(answeredOf[ids[s]]) /
                      static_cast<double>(row.answered)
                : 0.0;
        const double weightShare =
            static_cast<double>(s == 0 ? hotWeight : 1) /
            static_cast<double>(weightSum);
        const double ratio = share / weightShare;
        if (s == 0) {
            minRatio = maxRatio = ratio;
        } else {
            minRatio = std::min(minRatio, ratio);
            maxRatio = std::max(maxRatio, ratio);
        }
    }
    row.fairShareMin = minRatio;
    row.fairShareMax = maxRatio;
    row.starvationRatio = minRatio > 0.0 ? maxRatio / minRatio : 0.0;

    const BatchSchedulerStats stats = scheduler.stats();
    row.queueWaitP50 = stats.queueWaitP50;
    row.queueWaitP95 = stats.queueWaitP95;
    row.queueWaitP99 = stats.queueWaitP99;
    row.drainServiceP95 = stats.drainServiceP95;
    const std::uint64_t decided = row.answered + row.deadlineShed;
    row.deadlineHitRate =
        decided > 0 ? static_cast<double>(row.answered) /
                          static_cast<double>(decided)
                    : 1.0;
    return row;
}

struct AdaptiveRow
{
    double offeredMultiplier = 0.0;
    double targetLatencySeconds = 0.0;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejectedAdaptive = 0;
    std::uint64_t answered = 0;
    std::size_t adaptiveQueueDepth = 0;
    int adaptiveEngaged = 0;
    double requestServiceP95 = 0.0;
};

/**
 * Re-run the overload point with the adaptive queue-depth bound
 * armed. The depth itself is machine-speed-dependent (target / p95),
 * so the CI gate rides on adaptive_engaged — whether drains landed a
 * service signal and derived a bound at all — not on its value.
 */
AdaptiveRow
measureAdaptive(AttentionEngine &engine, double multiplier,
                std::size_t rounds, std::size_t maxBatch,
                std::size_t rows, std::size_t d)
{
    const std::size_t sessions = 4;
    Rng rng(bench::benchSeed + 11);
    EngineConfig config;
    config.kind = EngineKind::ApproxFloat;
    SessionCache cache;
    std::vector<std::string> ids;
    std::vector<SessionHandle> handles;
    for (std::size_t s = 0; s < sessions; ++s) {
        ids.push_back("adaptive-" + std::to_string(s));
        handles.push_back(
            cache.bindSession(ids.back(), config,
                              randomMatrix(rng, rows, d),
                              randomMatrix(rng, rows, d))
                .handle);
    }

    AdmissionPolicy policy;
    policy.maxQueueDepth = 4 * maxBatch;
    policy.targetLatencySeconds = 0.05;
    BatchScheduler scheduler(engine, cache, maxBatch, policy);

    AdaptiveRow row;
    row.offeredMultiplier = multiplier;
    row.targetLatencySeconds = policy.targetLatencySeconds;
    const std::size_t offeredPerRound = std::max<std::size_t>(
        sessions, static_cast<std::size_t>(
                      multiplier * static_cast<double>(maxBatch)));
    Vector query(d);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < offeredPerRound; ++i) {
            ++row.offered;
            if (scheduler.submit(handles[i % sessions], query)
                    .admitted())
                ++row.admitted;
        }
        for (const ServingResult &done : scheduler.drain()) {
            if (done.ok())
                ++row.answered;
        }
    }
    const BatchSchedulerStats stats = scheduler.stats();
    row.rejectedAdaptive = stats.rejectedAdaptiveDepth;
    row.adaptiveQueueDepth = stats.adaptiveQueueDepth;
    row.adaptiveEngaged = stats.adaptiveQueueDepth > 0 ? 1 : 0;
    row.requestServiceP95 = stats.requestServiceP95;
    return row;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string csvPath;
    std::size_t rounds = 40;
    std::size_t maxBatch = 32;
    std::size_t rows = 320;
    for (int i = 1; i < argc; ++i) {
        const auto parsePositive = [&](const char *flag) {
            if (i + 1 >= argc)
                fatal(flag, " needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal(flag, " must be a positive integer, got \"",
                      argv[i], "\"");
            return static_cast<std::size_t>(parsed);
        };
        if (std::strcmp(argv[i], "--rounds") == 0)
            rounds = parsePositive("--rounds");
        else if (std::strcmp(argv[i], "--max-batch") == 0)
            maxBatch = parsePositive("--max-batch");
        else if (std::strcmp(argv[i], "--rows") == 0)
            rows = parsePositive("--rows");
        else
            csvPath = argv[i];
    }

    const std::size_t d = 64;
    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    AttentionEngine engine(hw);

    std::vector<OverloadRow> table;
    for (const double multiplier : {0.5, 1.0, 2.0, 4.0}) {
        table.push_back(measureOverload(engine, multiplier, rounds,
                                        maxBatch, rows, d));
    }
    const AdaptiveRow adaptive =
        measureAdaptive(engine, 4.0, rounds, maxBatch, rows, d);

    std::printf("{\n  \"overload\": [\n");
    for (std::size_t i = 0; i < table.size(); ++i) {
        const OverloadRow &r = table[i];
        std::printf(
            "    {\"offered_multiplier\": %.1f, \"regime\": \"%s\", "
            "\"rounds\": %zu, \"max_batch\": %zu, "
            "\"queue_depth\": %zu, \"offered\": %llu, "
            "\"admitted\": %llu, \"rejected\": %llu, "
            "\"shed_rate\": %.4f, \"answered\": %llu, "
            "\"max_pending\": %zu, \"fair_share_min\": %.4f, "
            "\"fair_share_max\": %.4f, \"starvation_ratio\": %.4f, "
            "\"queue_wait_p50_seconds\": %.3e, "
            "\"queue_wait_p95_seconds\": %.3e, "
            "\"queue_wait_p99_seconds\": %.3e, "
            "\"drain_service_p95_seconds\": %.3e, "
            "\"deadline_seconds\": %.2f, \"deadline_shed\": %llu, "
            "\"deadline_hit_rate\": %.4f}%s\n",
            r.offeredMultiplier, r.regime, r.rounds, r.maxBatch,
            r.queueDepth, static_cast<unsigned long long>(r.offered),
            static_cast<unsigned long long>(r.admitted),
            static_cast<unsigned long long>(r.rejected), r.shedRate,
            static_cast<unsigned long long>(r.answered), r.maxPending,
            r.fairShareMin, r.fairShareMax, r.starvationRatio,
            r.queueWaitP50, r.queueWaitP95, r.queueWaitP99,
            r.drainServiceP95, kDeadlineSeconds,
            static_cast<unsigned long long>(r.deadlineShed),
            r.deadlineHitRate, i + 1 < table.size() ? "," : "");
    }
    std::printf("  ],\n  \"adaptive\": [\n");
    std::printf(
        "    {\"offered_multiplier\": %.1f, "
        "\"target_latency_seconds\": %.3f, \"offered\": %llu, "
        "\"admitted\": %llu, \"rejected_adaptive\": %llu, "
        "\"answered\": %llu, \"adaptive_engaged\": %d, "
        "\"adaptive_queue_depth\": %zu, "
        "\"request_service_p95_seconds\": %.3e}\n",
        adaptive.offeredMultiplier, adaptive.targetLatencySeconds,
        static_cast<unsigned long long>(adaptive.offered),
        static_cast<unsigned long long>(adaptive.admitted),
        static_cast<unsigned long long>(adaptive.rejectedAdaptive),
        static_cast<unsigned long long>(adaptive.answered),
        adaptive.adaptiveEngaged, adaptive.adaptiveQueueDepth,
        adaptive.requestServiceP95);
    std::printf("  ]\n}\n");

    if (!csvPath.empty()) {
        CsvWriter csv(csvPath);
        csv.writeRow({"offered_multiplier", "offered", "admitted",
                      "rejected", "shed_rate", "answered",
                      "max_pending", "fair_share_min",
                      "starvation_ratio", "queue_wait_p99_seconds",
                      "deadline_hit_rate"});
        for (const OverloadRow &r : table) {
            csv.writeRow({std::to_string(r.offeredMultiplier),
                          std::to_string(r.offered),
                          std::to_string(r.admitted),
                          std::to_string(r.rejected),
                          std::to_string(r.shedRate),
                          std::to_string(r.answered),
                          std::to_string(r.maxPending),
                          std::to_string(r.fairShareMin),
                          std::to_string(r.starvationRatio),
                          std::to_string(r.queueWaitP99),
                          std::to_string(r.deadlineHitRate)});
        }
    }
    return 0;
}
