/**
 * @file
 * Sharded-attention scaling sweep, emitted as one JSON object:
 *
 *  - "rows_per_shard_sweep": fixed total rows, sweeping the shard
 *    capacity (so the shard count falls as capacity grows), with
 *    serial and engine-flattened fan-out queries/sec (the engine
 *    decomposes each query into per-shard work units and runs the
 *    whole batch on one work list), the parallel-vs-serial speedup,
 *    and the max absolute output difference against the unsharded
 *    reference backend (the ULP-bound evidence).
 *  - "shard_count_sweep": fixed total rows, sweeping the shard count
 *    directly (capacity = ceil(rows / shards)), same columns — the
 *    per-shard scaling figure for huge contexts.
 *
 * Usage: sharded_scaling [out.csv] [--repeats R] [--rows N]
 *   --rows N sets the total context rows (default 16384; CI smoke
 *   runs pass something smaller).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "attention/backend.hpp"
#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "serving/sharded_backend.hpp"
#include "tensor/matrix.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace a3;

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

struct ShardedRow
{
    std::size_t rows = 0;
    std::size_t dims = 0;
    std::size_t shardRows = 0;
    std::size_t shards = 0;
    double serialQps = 0.0;
    double parallelQps = 0.0;
    /** parallel / serial: what the engine's flattened (query,
     *  shard) work list buys over one-thread fan-out. */
    double speedupParallelVsSerial = 0.0;
    /** max |sharded - unsharded| over the probe outputs. */
    double maxAbsDiffVsUnsharded = 0.0;
    std::size_t repeats = 0;
};

double
measureQps(const AttentionBackend &backend,
           const std::vector<Vector> &queries, std::size_t repeats)
{
    AttentionResult out;
    backend.runInto(queries.front(), out);  // warm-up
    RunningStat seconds;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        for (const Vector &q : queries)
            backend.runInto(q, out);
        seconds.add(now() - start);
    }
    return static_cast<double>(queries.size()) / seconds.min();
}

/**
 * Engine-flattened throughput: the batch is decomposed into (query,
 * shard) work units and fanned out over the engine's lanes — the
 * serving tier's execution shape.
 */
double
measureEngineQps(const AttentionEngine &engine,
                 const AttentionBackend &backend,
                 const std::vector<Vector> &queries,
                 std::size_t repeats)
{
    std::vector<AttentionResult> out;
    engine.runInto(backend, queries, out);  // warm-up
    RunningStat seconds;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        engine.runInto(backend, queries, out);
        seconds.add(now() - start);
    }
    return static_cast<double>(queries.size()) / seconds.min();
}

ShardedRow
measureSharding(const Matrix &key, const Matrix &value,
                std::size_t shardRows, const AttentionEngine &engine,
                const AttentionBackend &unsharded,
                const std::vector<Vector> &queries,
                std::size_t repeats)
{
    EngineConfig config;
    config.kind = EngineKind::ExactFloat;

    ShardedConfig serialConfig;
    serialConfig.shardRows = shardRows;
    const ShardedBackend serial(config, key, value, serialConfig);

    ShardedRow row;
    row.rows = key.rows();
    row.dims = key.cols();
    row.shardRows = shardRows;
    row.shards = serial.shardCount();
    row.serialQps = measureQps(serial, queries, repeats);
    row.parallelQps =
        measureEngineQps(engine, serial, queries, repeats);
    row.speedupParallelVsSerial =
        row.serialQps > 0.0 ? row.parallelQps / row.serialQps : 0.0;
    row.repeats = repeats;

    AttentionResult sharded;
    AttentionResult plain;
    for (const Vector &q : queries) {
        serial.runInto(q, sharded);
        unsharded.runInto(q, plain);
        row.maxAbsDiffVsUnsharded = std::max(
            row.maxAbsDiffVsUnsharded,
            static_cast<double>(maxAbsDiff(sharded.output,
                                           plain.output)));
    }
    return row;
}

void
printRows(const char *label, const std::vector<ShardedRow> &rows,
          bool last)
{
    std::printf("  \"%s\": [\n", label);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ShardedRow &r = rows[i];
        std::printf("    {\"rows\": %zu, \"dims\": %zu, "
                    "\"shard_rows\": %zu, \"shards\": %zu, "
                    "\"serial_qps\": %.1f, \"parallel_qps\": %.1f, "
                    "\"speedup_parallel_vs_serial\": %.2f, "
                    "\"max_abs_diff_vs_unsharded\": %.3e, "
                    "\"repeats\": %zu}%s\n",
                    r.rows, r.dims, r.shardRows, r.shards,
                    r.serialQps, r.parallelQps,
                    r.speedupParallelVsSerial,
                    r.maxAbsDiffVsUnsharded, r.repeats,
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]%s\n", last ? "" : ",");
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string csvPath;
    std::size_t repeats = 20;
    std::size_t totalRows = 16384;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0) {
            if (i + 1 >= argc)
                fatal("--repeats needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--repeats must be a positive integer, got \"",
                      argv[i], "\"");
            repeats = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--rows") == 0) {
            if (i + 1 >= argc)
                fatal("--rows needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed < 64)
                fatal("--rows must be at least 64, got \"", argv[i],
                      "\"");
            totalRows = static_cast<std::size_t>(parsed);
        } else {
            csvPath = argv[i];
        }
    }

    const std::size_t d = 64;
    Rng rng(bench::benchSeed);
    const Matrix key = randomMatrix(rng, totalRows, d);
    const Matrix value = randomMatrix(rng, totalRows, d);
    const ReferenceAttention unsharded(key, value);

    const std::size_t lanes = std::max<std::size_t>(
        2, std::thread::hardware_concurrency());
    AttentionEngine engine(lanes);

    std::vector<Vector> queries(8);
    for (auto &q : queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    // --- Rows-per-shard sweep: capacity halves, shard count doubles.
    std::vector<ShardedRow> capacityRows;
    for (std::size_t shardRows = totalRows; shardRows >= totalRows / 16;
         shardRows /= 4) {
        capacityRows.push_back(measureSharding(key, value, shardRows,
                                               engine, unsharded,
                                               queries, repeats));
    }

    // --- Shard-count sweep: S shards of ceil(rows / S) capacity.
    std::vector<ShardedRow> countRows;
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{8}, std::size_t{16}}) {
        const std::size_t shardRows =
            (totalRows + shards - 1) / shards;
        countRows.push_back(measureSharding(key, value, shardRows,
                                            engine, unsharded,
                                            queries, repeats));
    }

    std::printf("{\n");
    printRows("rows_per_shard_sweep", capacityRows, false);
    printRows("shard_count_sweep", countRows, true);
    std::printf("}\n");

    if (!csvPath.empty()) {
        CsvWriter csv(csvPath);
        csv.writeRow({"sweep", "rows", "shard_rows", "shards",
                      "serial_qps", "parallel_qps",
                      "speedup_parallel_vs_serial",
                      "max_abs_diff_vs_unsharded"});
        const auto dump = [&csv](const char *sweep,
                                 const std::vector<ShardedRow> &rows) {
            for (const ShardedRow &r : rows) {
                csv.writeRow({sweep, std::to_string(r.rows),
                              std::to_string(r.shardRows),
                              std::to_string(r.shards),
                              std::to_string(r.serialQps),
                              std::to_string(r.parallelQps),
                              std::to_string(
                                  r.speedupParallelVsSerial),
                              std::to_string(
                                  r.maxAbsDiffVsUnsharded)});
            }
        };
        dump("rows_per_shard_sweep", capacityRows);
        dump("shard_count_sweep", countRows);
    }
    return 0;
}
