/**
 * @file
 * Ablations on the design choices DESIGN.md calls out:
 *
 *  1. Pipeline timing formulas: simulated base latency vs 3n + 27 and
 *     throughput vs n + 9 across n (Section III-A), plus the approx
 *     latency decomposition M + C + 2K + alpha (Section V-C).
 *  2. The min-queue skip heuristic: candidate counts and metric with
 *     the heuristic on vs off (Section IV-C, last paragraph).
 *  3. Greedy-score scan width: the 16-entries/cycle scanner vs
 *     narrower/wider alternatives (Section V-A).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "harness/accuracy.hpp"
#include "sim/accelerator.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "workloads/babi_like.hpp"

namespace {

using namespace a3;

struct RandomTask
{
    Matrix key;
    Matrix value;
    std::vector<Vector> queries;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d, std::size_t queries)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    t.queries.resize(queries);
    for (auto &q : t.queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }
    return t;
}

void
timingFormulas()
{
    Table table("Ablation 1: base-pipeline timing vs paper formulas");
    table.setHeader({"n", "latency (sim)", "3n+27", "cycles/query "
                     "(sim)", "n+9"});
    Rng rng(bench::benchSeed);
    for (std::size_t n : {20u, 50u, 100u, 186u, 320u}) {
        const RandomTask t = makeTask(rng, n, 64, 8);
        SimConfig cfg;
        cfg.maxRows = n;
        cfg.dims = 64;
        cfg.mode = A3Mode::Base;
        A3Accelerator acc(cfg);
        acc.loadTask(t.key, t.value);
        const RunStats stats = acc.runAll(t.queries);
        table.addRow({std::to_string(n),
                      Table::num(stats.avgLatency, 0),
                      std::to_string(3 * n + 27),
                      Table::num(stats.cyclesPerQuery, 0),
                      std::to_string(n + 9)});
    }
    table.print();

    Table approx("Ablation 1b: approximate-pipeline latency "
                 "decomposition (n=320)");
    approx.setHeader(
        {"config", "M", "C", "K", "latency (sim)", "M+C+2K+alpha"});
    Rng rng2(bench::benchSeed);
    const RandomTask t = makeTask(rng2, 320, 64, 1);
    for (const auto &[label, preset] :
         {std::pair{"conservative", ApproxConfig::conservative()},
          std::pair{"aggressive", ApproxConfig::aggressive()}}) {
        SimConfig cfg;
        cfg.maxRows = 320;
        cfg.dims = 64;
        cfg.mode = A3Mode::Approx;
        cfg.approx = preset;
        A3Accelerator acc(cfg);
        acc.loadTask(t.key, t.value);
        acc.runAll(t.queries);
        acc.popOutput();  // discard; use stats captured internally
        const RunStats stats = acc.stats();
        // alpha = 5 + ceil(n/16) + 9 + ceil(C/16) + 9 + 9.
        const double m = 320 * (preset.mFraction);
        const double c = stats.avgCandidates;
        const double k = stats.avgKept;
        const double alpha =
            5.0 + 20.0 + 9.0 + std::ceil(c / 16.0) + 9.0 + 9.0;
        approx.addRow({label, Table::num(m, 0), Table::num(c, 0),
                       Table::num(k, 0),
                       Table::num(stats.avgLatency, 0),
                       Table::num(m + c + 2 * k + alpha, 0)});
    }
    approx.print();
}

void
skipHeuristic()
{
    Table table("Ablation 2: min-queue skip heuristic (MemN2N, "
                "M = n/2)");
    table.setHeader({"skip heuristic", "metric", "C/n",
                     "min pops skipped/query"});
    BabiLikeWorkload w;
    for (bool skip : {true, false}) {
        EngineConfig cfg;
        cfg.kind = EngineKind::ApproxFloat;
        cfg.approx = ApproxConfig();
        cfg.approx.postScoring = false;
        cfg.approx.skipHeuristic = skip;
        const AccuracyReport r =
            evaluateAccuracy(w, cfg, 200, bench::benchSeed);

        // Measure skipped ops directly on sampled episodes.
        Rng rng(bench::benchSeed);
        double skippedSum = 0.0;
        for (int e = 0; e < 100; ++e) {
            const AttentionTask task = w.sample(rng);
            ApproxAttention engine(task.key, task.value, cfg.approx);
            skippedSum += static_cast<double>(
                engine.selectCandidates(task.queries[0])
                    .skippedMinOps);
        }
        table.addRow({skip ? "on (paper)" : "off",
                      Table::num(r.metric),
                      Table::num(r.normalizedCandidates),
                      Table::num(skippedSum / 100.0, 1)});
    }
    table.print();
}

void
scanWidth()
{
    Table table("Ablation 3: greedy-score scan width (n=320, "
                "conservative)");
    table.setHeader({"entries/cycle", "candidate-stage cycles",
                     "throughput cycles/query"});
    Rng rng(bench::benchSeed);
    const RandomTask t = makeTask(rng, 320, 64, 8);
    for (std::size_t width : {4u, 16u, 64u}) {
        SimConfig cfg;
        cfg.maxRows = 320;
        cfg.dims = 64;
        cfg.mode = A3Mode::Approx;
        cfg.approx = ApproxConfig::conservative();
        cfg.scanWidth = width;
        A3Accelerator acc(cfg);
        acc.loadTask(t.key, t.value);
        const RunStats stats = acc.runAll(t.queries);
        const Cycle candidateService =
            5 + 160 + (320 + width - 1) / width;
        table.addRow({std::to_string(width),
                      std::to_string(candidateService),
                      Table::num(stats.cyclesPerQuery, 1)});
    }
    table.print();
    std::printf("The 16-wide scanner (paper) keeps the scan under 7%% "
                "of the candidate-stage time at n = 320.\n");
}

}  // namespace

int
main()
{
    timingFormulas();
    skipHeuristic();
    scanWidth();
    return 0;
}
