/**
 * @file
 * Serving-layer throughput sweep, emitted as one JSON object:
 *
 *  - "append_vs_rebind": per task size n and backend, the cost of a
 *    full re-bind (rebuild the sorted key / re-quantize everything)
 *    against one incremental append() of a single row, with the
 *    speedup ratio — the number that justifies the streaming path.
 *  - "session_cache": bind time on a cache miss vs lookup time on a
 *    hit for the same session, plus the cache's own counters.
 *  - "scheduler": end-to-end queries/sec of submit + drain over
 *    multiple sessions through the coalescing BatchScheduler.
 *  - "session_capacity": how many quantized 320 x 64 sessions a
 *    SessionCache with a fixed 4 MiB byte budget holds before its
 *    first eviction, per packed K/V layout — the serving-density
 *    payoff of the packed storage layer (capacity_vs_word32 is the
 *    headline ratio). Deterministic: memoryBytes() is a pure
 *    function of the layout and shape, no timing involved.
 *
 * Usage: serving_throughput [out.csv] [--repeats R] [--max-rows N]
 *   --max-rows N restricts the append sweep to sizes <= N (CI smoke
 *   runs; the default sweep is {512, 2048, 8192}).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attention/approx_attention.hpp"
#include "attention/backend.hpp"
#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "fixed/packed.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace a3;

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

struct AppendRow
{
    std::string backend;
    std::size_t rows = 0;
    std::size_t dims = 0;
    double rebindSeconds = 0.0;
    double appendRowSeconds = 0.0;
    /** rebind / append: how much the incremental path saves. */
    double speedupAppendVsRebind = 0.0;
    std::size_t repeats = 0;
};

AppendRow
measureAppend(const EngineConfig &config, std::size_t n, std::size_t d,
              std::size_t repeats)
{
    Rng rng(bench::benchSeed);
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    // Full re-bind: preprocessing runs from scratch every time.
    RunningStat rebind;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        const auto backend = makeBackend(config, key, value);
        rebind.add(now() - start);
        if (backend->rows() != n)
            fatal("bind dropped rows");
    }

    // Incremental: one row per append against a live backend. The
    // task grows by `repeats` rows over the measurement — negligible
    // against n, and it only biases the result against append().
    const auto backend = makeBackend(config, key, value);
    RunningStat append;
    Rng rowRng(bench::benchSeed + 1);
    for (std::size_t r = 0; r < repeats; ++r) {
        const Matrix keyRow = randomMatrix(rowRng, 1, d);
        const Matrix valueRow = randomMatrix(rowRng, 1, d);
        const double start = now();
        backend->append(keyRow, valueRow);
        append.add(now() - start);
    }
    if (backend->rows() != n + repeats)
        fatal("append dropped rows");

    AppendRow row;
    row.backend = backend->name();
    row.rows = n;
    row.dims = d;
    row.rebindSeconds = rebind.mean();
    row.appendRowSeconds = append.mean();
    row.speedupAppendVsRebind =
        append.mean() > 0.0 ? rebind.mean() / append.mean() : 0.0;
    row.repeats = repeats;
    return row;
}

struct CacheRow
{
    std::size_t sessions = 0;
    std::size_t rows = 0;
    double missBindSeconds = 0.0;
    double hitLookupSeconds = 0.0;
    double speedupHitVsMiss = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

CacheRow
measureCache(std::size_t sessions, std::size_t n, std::size_t d,
             std::size_t repeats)
{
    Rng rng(bench::benchSeed + 2);
    EngineConfig config;
    config.kind = EngineKind::ApproxFloat;
    SessionCache cache;

    std::vector<Matrix> keys;
    std::vector<Matrix> values;
    for (std::size_t s = 0; s < sessions; ++s) {
        keys.push_back(randomMatrix(rng, n, d));
        values.push_back(randomMatrix(rng, n, d));
    }

    RunningStat miss;
    for (std::size_t s = 0; s < sessions; ++s) {
        const double start = now();
        cache.bindSession("session-" + std::to_string(s), config,
                          keys[s], values[s]);
        miss.add(now() - start);
    }
    // Steady state from here: drop the bind-phase counters so the
    // reported hits/misses describe only the measured hit loop.
    cache.resetCounters();
    // Hit path as a hot serving loop runs it: lookupSession() first,
    // so the matrices are never copied (bindSession()'s by-value
    // parameters would charge a full task copy to every timed hit).
    RunningStat hit;
    for (std::size_t r = 0; r < repeats; ++r) {
        for (std::size_t s = 0; s < sessions; ++s) {
            const std::string id = "session-" + std::to_string(s);
            const double start = now();
            const SessionHandle handle = cache.lookupSession(id);
            hit.add(now() - start);
            if (!handle.valid())
                fatal("cache lost a session");
        }
    }

    CacheRow row;
    row.sessions = sessions;
    row.rows = n;
    row.missBindSeconds = miss.mean();
    row.hitLookupSeconds = hit.mean();
    row.speedupHitVsMiss =
        hit.mean() > 0.0 ? miss.mean() / hit.mean() : 0.0;
    row.hits = cache.stats().hits;
    row.misses = cache.stats().misses;
    return row;
}

struct SchedulerRow
{
    std::size_t sessions = 0;
    std::size_t queriesPerSession = 0;
    std::size_t threads = 0;
    double queriesPerSecond = 0.0;
    std::size_t repeats = 0;
    /** Steady-state scheduler counters over the measured drains. */
    std::uint64_t answered = 0;
    std::uint64_t coalescedGroups = 0;
    /** Reservoir percentiles over the measured drains (seconds). */
    double queueWaitP50 = 0.0;
    double queueWaitP99 = 0.0;
    double drainServiceP95 = 0.0;
};

SchedulerRow
measureScheduler(std::size_t sessions, std::size_t queriesPerSession,
                 std::size_t threads, std::size_t n, std::size_t d,
                 std::size_t repeats)
{
    Rng rng(bench::benchSeed + 3);
    EngineConfig config;
    config.kind = EngineKind::ApproxFloat;
    AttentionEngine engine(threads);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);
    std::vector<SessionHandle> handles;
    for (std::size_t s = 0; s < sessions; ++s) {
        handles.push_back(
            cache.bindSession("session-" + std::to_string(s), config,
                              randomMatrix(rng, n, d),
                              randomMatrix(rng, n, d))
                .handle);
    }
    std::vector<Vector> queries(sessions * queriesPerSession);
    for (auto &q : queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    const auto submitAll = [&] {
        std::size_t i = 0;
        for (std::size_t q = 0; q < queriesPerSession; ++q)
            for (std::size_t s = 0; s < sessions; ++s)
                scheduler.submit(handles[s], queries[i++]);
    };
    // Warm-up drain spins the pool up and grows the scratch arenas;
    // resetting the counters afterwards makes the reported stats
    // steady-state rather than cumulative-including-warm-up.
    submitAll();
    if (scheduler.drain().size() != queries.size())
        fatal("scheduler dropped requests");
    scheduler.resetCounters();
    cache.resetCounters();

    RunningStat batchSeconds;
    for (std::size_t r = 0; r < repeats; ++r) {
        submitAll();
        const double start = now();
        const auto completions = scheduler.drain();
        batchSeconds.add(now() - start);
        if (completions.size() != queries.size())
            fatal("scheduler dropped requests");
    }

    SchedulerRow row;
    row.sessions = sessions;
    row.queriesPerSession = queriesPerSession;
    row.threads = threads;
    row.queriesPerSecond =
        static_cast<double>(queries.size()) / batchSeconds.min();
    row.repeats = repeats;
    const BatchSchedulerStats stats = scheduler.stats();
    row.answered = stats.answered;
    row.coalescedGroups = stats.groups;
    row.queueWaitP50 = stats.queueWaitP50;
    row.queueWaitP99 = stats.queueWaitP99;
    row.drainServiceP95 = stats.drainServiceP95;
    return row;
}

struct CapacityRow
{
    std::string kvFormat;
    int intBits = 0;
    int fracBits = 0;
    std::size_t bytesPerSession = 0;
    /** Sessions resident when the budget first forced an eviction. */
    std::size_t sessionCapacity = 0;
    double capacityVsWord32 = 1.0;
};

CapacityRow
measureCapacity(const EngineConfig &config, const char *kvFormat,
                std::size_t byteBudget, std::size_t n, std::size_t d)
{
    Rng rng(bench::benchSeed + 4);
    // One task reused for every session: capacity depends only on
    // memoryBytes(), which is shape- and layout-determined.
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    SessionCache cache(byteBudget);
    CapacityRow row;
    row.kvFormat = kvFormat;
    row.intBits = config.intBits;
    row.fracBits = config.fracBits;
    // Bind until the LRU evicts: the capacity is the resident count
    // at that moment (the newly bound session has displaced the
    // oldest one).
    for (std::size_t s = 0; s < 100000; ++s) {
        const BindOutcome bound = cache.bindSession(
            "session-" + std::to_string(s), config, key, value);
        if (row.bytesPerSession == 0)
            row.bytesPerSession = bound.logicalBytes;
        if (cache.stats().evictions > 0) {
            row.sessionCapacity = cache.sessionCount();
            return row;
        }
    }
    fatal("session-capacity sweep never hit the byte budget");
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string csvPath;
    std::size_t repeats = 20;
    std::size_t maxRows = 8192;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0) {
            if (i + 1 >= argc)
                fatal("--repeats needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--repeats must be a positive integer, got \"",
                      argv[i], "\"");
            repeats = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--max-rows") == 0) {
            if (i + 1 >= argc)
                fatal("--max-rows needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--max-rows must be a positive integer, got \"",
                      argv[i], "\"");
            maxRows = static_cast<std::size_t>(parsed);
        } else {
            csvPath = argv[i];
        }
    }

    const std::size_t d = 64;

    // --- Incremental binding vs full re-bind.
    std::vector<AppendRow> appendRows;
    for (const std::size_t n : {std::size_t{512}, std::size_t{2048},
                                std::size_t{8192}}) {
        if (n > maxRows)
            continue;
        for (const EngineKind kind :
             {EngineKind::ApproxFloat, EngineKind::ExactQuantized}) {
            EngineConfig config;
            config.kind = kind;
            appendRows.push_back(
                measureAppend(config, n, d, repeats));
        }
    }

    // --- Session cache hit vs miss.
    const CacheRow cacheRow = measureCache(8, 2048, d, repeats);

    // --- Sessions held at a fixed byte budget, per packed layout.
    const std::size_t capacityBudget = 4u << 20;  // 4 MiB
    std::vector<CapacityRow> capacityRows;
    {
        EngineConfig word32;
        word32.kind = EngineKind::ExactQuantized;
        word32.intBits = 4;
        word32.fracBits = 4;
        word32.packedKv = PackedKvFormat::Word32;
        capacityRows.push_back(measureCapacity(word32, "word32",
                                               capacityBudget, 320,
                                               d));
        EngineConfig int8Cfg = word32;
        int8Cfg.intBits = 3;
        int8Cfg.packedKv = PackedKvFormat::Auto;  // resolves to int8
        capacityRows.push_back(
            measureCapacity(int8Cfg, "int8", capacityBudget, 320, d));
        EngineConfig int4Cfg = word32;
        int4Cfg.intBits = 1;
        int4Cfg.fracBits = 2;
        int4Cfg.packedKv = PackedKvFormat::Auto;  // resolves to int4
        capacityRows.push_back(
            measureCapacity(int4Cfg, "int4", capacityBudget, 320, d));
        for (CapacityRow &row : capacityRows) {
            row.capacityVsWord32 =
                static_cast<double>(row.sessionCapacity) /
                static_cast<double>(capacityRows[0].sessionCapacity);
        }
    }

    // --- Scheduler throughput.
    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    std::vector<SchedulerRow> schedulerRows;
    schedulerRows.push_back(
        measureScheduler(4, 64, 1, 320, d, repeats));
    if (hw > 1) {
        schedulerRows.push_back(
            measureScheduler(4, 64, hw, 320, d, repeats));
    }

    std::printf("{\n  \"append_vs_rebind\": [\n");
    for (std::size_t i = 0; i < appendRows.size(); ++i) {
        const AppendRow &r = appendRows[i];
        std::printf("    {\"backend\": \"%s\", \"rows\": %zu, "
                    "\"dims\": %zu, \"rebind_seconds\": %.3e, "
                    "\"append_row_seconds\": %.3e, "
                    "\"speedup_append_vs_rebind\": %.1f, "
                    "\"repeats\": %zu}%s\n",
                    r.backend.c_str(), r.rows, r.dims, r.rebindSeconds,
                    r.appendRowSeconds, r.speedupAppendVsRebind,
                    r.repeats, i + 1 < appendRows.size() ? "," : "");
    }
    std::printf("  ],\n  \"session_cache\": [\n");
    std::printf("    {\"sessions\": %zu, \"rows\": %zu, "
                "\"miss_bind_seconds\": %.3e, "
                "\"hit_lookup_seconds\": %.3e, "
                "\"speedup_hit_vs_miss\": %.1f, "
                "\"hits\": %llu, \"misses\": %llu}\n",
                cacheRow.sessions, cacheRow.rows,
                cacheRow.missBindSeconds, cacheRow.hitLookupSeconds,
                cacheRow.speedupHitVsMiss,
                static_cast<unsigned long long>(cacheRow.hits),
                static_cast<unsigned long long>(cacheRow.misses));
    std::printf("  ],\n  \"session_capacity\": [\n");
    for (std::size_t i = 0; i < capacityRows.size(); ++i) {
        const CapacityRow &r = capacityRows[i];
        std::printf("    {\"kv_format\": \"%s\", \"int_bits\": %d, "
                    "\"frac_bits\": %d, \"byte_budget\": %zu, "
                    "\"bytes_per_session\": %zu, "
                    "\"session_capacity\": %zu, "
                    "\"capacity_vs_word32\": %.2f}%s\n",
                    r.kvFormat.c_str(), r.intBits, r.fracBits,
                    capacityBudget, r.bytesPerSession,
                    r.sessionCapacity, r.capacityVsWord32,
                    i + 1 < capacityRows.size() ? "," : "");
    }
    std::printf("  ],\n  \"scheduler\": [\n");
    for (std::size_t i = 0; i < schedulerRows.size(); ++i) {
        const SchedulerRow &r = schedulerRows[i];
        std::printf("    {\"sessions\": %zu, "
                    "\"queries_per_session\": %zu, \"threads\": %zu, "
                    "\"queries_per_second\": %.1f, \"repeats\": %zu, "
                    "\"answered\": %llu, "
                    "\"coalesced_groups\": %llu, "
                    "\"queue_wait_p50_seconds\": %.3e, "
                    "\"queue_wait_p99_seconds\": %.3e, "
                    "\"drain_service_p95_seconds\": %.3e}%s\n",
                    r.sessions, r.queriesPerSession, r.threads,
                    r.queriesPerSecond, r.repeats,
                    static_cast<unsigned long long>(r.answered),
                    static_cast<unsigned long long>(r.coalescedGroups),
                    r.queueWaitP50, r.queueWaitP99, r.drainServiceP95,
                    i + 1 < schedulerRows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");

    if (!csvPath.empty()) {
        CsvWriter csv(csvPath);
        csv.writeRow({"metric", "backend_or_sessions", "rows",
                      "baseline_seconds", "fast_seconds", "speedup"});
        for (const AppendRow &r : appendRows) {
            csv.writeRow({"append_vs_rebind", r.backend,
                          std::to_string(r.rows),
                          std::to_string(r.rebindSeconds),
                          std::to_string(r.appendRowSeconds),
                          std::to_string(r.speedupAppendVsRebind)});
        }
        csv.writeRow({"session_cache",
                      std::to_string(cacheRow.sessions),
                      std::to_string(cacheRow.rows),
                      std::to_string(cacheRow.missBindSeconds),
                      std::to_string(cacheRow.hitLookupSeconds),
                      std::to_string(cacheRow.speedupHitVsMiss)});
        for (const CapacityRow &r : capacityRows) {
            csv.writeRow({"session_capacity", r.kvFormat,
                          std::to_string(r.bytesPerSession),
                          std::to_string(r.sessionCapacity), "",
                          std::to_string(r.capacityVsWord32)});
        }
        for (const SchedulerRow &r : schedulerRows) {
            csv.writeRow({"scheduler", std::to_string(r.sessions),
                          std::to_string(r.queriesPerSession),
                          std::to_string(r.threads), "",
                          std::to_string(r.queriesPerSecond)});
        }
    }
    return 0;
}
