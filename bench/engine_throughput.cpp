/**
 * @file
 * AttentionEngine throughput sweep: queries/sec for batch sizes
 * {1, 16, 128} x thread counts {1, hardware_concurrency} x kernel
 * variants {scalar, widest SIMD} x backends {reference, approx,
 * quantized in each K/V lane layout}, against one preprocessed
 * 320 x 64 task (the BERT shape of Section VI-A). The kernel-variant
 * column turns the SIMD layer's speedup into a reported number:
 * compare rows that differ only in "kernels", or read the precomputed
 * speedup_vs_scalar field.
 *
 * The quantized rows sweep the packed K/V layouts (word32 foil at the
 * paper-default i=4/f=4, int8 at i=3/f=4, int4 at i=1/f=2) and report
 * the memory side of the story: bytes_per_query is the bound task
 * footprint every query streams through, qps_per_gb divides
 * throughput by that footprint (the serving-density figure of merit),
 * and speedup_vs_word32 / bytes_ratio_vs_word32 compare each packed
 * row against the word32 row with the same kernels/threads/batch.
 *
 * Emits a JSON array on stdout (one object per configuration, timing
 * aggregated with util/stats' RunningStat); pass a path argument to
 * also dump the same rows as CSV via util/csv.
 *
 * Usage: engine_throughput [out.csv] [--repeats R] [--batch N]
 *   --batch N restricts the sweep to one batch size (CI smoke runs).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "attention/approx_attention.hpp"
#include "attention/backend.hpp"
#include "attention/quantized.hpp"
#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "fixed/packed.hpp"
#include "kernels/kernels.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace a3;

struct SweepRow
{
    std::string backend;
    /** K/V storage layout: "float32", "word32", "int8", or "int4". */
    std::string kvFormat;
    std::string kernels;
    std::size_t batch = 0;
    std::size_t threads = 0;
    double queriesPerSecond = 0.0;
    double meanBatchSeconds = 0.0;
    double stddevBatchSeconds = 0.0;
    std::size_t repeats = 0;
    /** SIMD-vs-scalar throughput ratio; 1.0 on the scalar rows. */
    double speedupVsScalar = 1.0;
    /** Bound task footprint (memoryBytes) each query streams over. */
    std::size_t bytesPerQuery = 0;
    /** Serving density: queries/sec per GiB of bound task state. */
    double qpsPerGb = 0.0;
    /** Packed-vs-word32 ratios; 1.0 outside the packed rows. */
    double speedupVsWord32 = 1.0;
    double bytesRatioVsWord32 = 1.0;
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

SweepRow
measure(const AttentionEngine &engine, const AttentionBackend &backend,
        const std::string &kvFormat, const std::vector<Vector> &queries,
        std::size_t repeats)
{
    // Warm-up pass: pulls the task into cache, spins the pool up, and
    // grows every lane's Scratch arena to task size.
    engine.run(backend, queries);

    RunningStat batchSeconds;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        const std::vector<AttentionResult> results =
            engine.run(backend, queries);
        batchSeconds.add(now() - start);
        if (results.size() != queries.size())
            fatal("engine dropped results");
    }

    SweepRow row;
    row.backend = backend.name();
    row.kvFormat = kvFormat;
    row.kernels = kernelIsaName(activeKernels().isa);
    row.batch = queries.size();
    row.threads = engine.threads();
    row.meanBatchSeconds = batchSeconds.mean();
    row.stddevBatchSeconds = batchSeconds.stddev();
    // Best-of-repeats throughput: robust against scheduler noise.
    row.queriesPerSecond =
        static_cast<double>(queries.size()) / batchSeconds.min();
    row.repeats = batchSeconds.count();
    row.bytesPerQuery = backend.memoryBytes();
    row.qpsPerGb = row.queriesPerSecond /
                   (static_cast<double>(row.bytesPerQuery) /
                    (1024.0 * 1024.0 * 1024.0));
    return row;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string csvPath;
    std::size_t repeats = 40;
    std::size_t onlyBatch = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0) {
            if (i + 1 >= argc)
                fatal("--repeats needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--repeats must be a positive integer, got \"",
                      argv[i], "\"");
            repeats = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--batch") == 0) {
            if (i + 1 >= argc)
                fatal("--batch needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0 || parsed > 128)
                fatal("--batch must lie in [1, 128], got \"", argv[i],
                      "\"");
            onlyBatch = static_cast<std::size_t>(parsed);
        } else {
            csvPath = argv[i];
        }
    }

    // BERT shape: n = 320 rows, d = 64, conservative approximation.
    Rng rng(bench::benchSeed);
    const std::size_t n = 320;
    const std::size_t d = 64;
    Matrix key(n, d);
    Matrix value(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    // reference = the pure float scoring path (dot + softmax +
    // weighted sum, no selection); approx = the paper's software flow;
    // the quantized trio differs only in K/V lane layout so the packed
    // columns compare like against like. The word32 foil keeps the
    // paper-default i=4/f=4; the packed rows use the widest formats
    // their lanes hold losslessly (Auto resolution).
    const ReferenceAttention reference(key, value);
    const ApproxAttention approx(key, value,
                                 ApproxConfig::conservative());
    const QuantizedAttention quantWord32(key, value, 4, 4,
                                         PackedKvFormat::Word32);
    const QuantizedAttention quantInt8(key, value, 3, 4);
    const QuantizedAttention quantInt4(key, value, 1, 2);
    a3Assert(quantInt8.packedFormat() == PackedKvFormat::Int8 &&
                 quantInt4.packedFormat() == PackedKvFormat::Int4,
             "Auto did not resolve to the expected packed lanes");

    struct BackendEntry
    {
        const AttentionBackend *backend;
        const char *kvFormat;
    };
    const std::vector<BackendEntry> backends{
        {&reference, "float32"},
        {&approx, "float32"},
        {&quantWord32, "word32"},
        {&quantInt8, "int8"},
        {&quantInt4, "int4"}};

    std::vector<Vector> pool(128);
    for (auto &q : pool) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    std::vector<std::size_t> threadCounts{1};
    if (hw > 1)
        threadCounts.push_back(hw);

    std::vector<std::size_t> batches{1, 16, 128};
    if (onlyBatch != 0)
        batches = {onlyBatch};

    // Scalar first, then the widest SIMD table the host supports (the
    // variants coincide when there is none — or when
    // A3_FORCE_SCALAR_KERNELS is set — and the sweep has one column).
    std::vector<const Kernels *> variants{&scalarKernels()};
    const Kernels &best = selectKernels();
    if (best.isa != KernelIsa::Scalar)
        variants.push_back(&best);

    std::vector<SweepRow> rows;
    for (const Kernels *variant : variants) {
        setActiveKernels(*variant);
        for (const BackendEntry &entry : backends) {
            for (std::size_t threads : threadCounts) {
                const AttentionEngine engine(threads);
                for (std::size_t batch : batches) {
                    const std::vector<Vector> queries(
                        pool.begin(),
                        pool.begin() + static_cast<long>(batch));
                    rows.push_back(measure(engine, *entry.backend,
                                           entry.kvFormat, queries,
                                           repeats));
                }
            }
        }
    }
    setActiveKernels(selectKernels());

    // Fill in speedup_vs_scalar on the SIMD rows from the matching
    // scalar row (same backend/layout/threads/batch), and the
    // packed-vs-word32 ratios on the int8/int4 rows from the word32
    // foil measured with the same kernels/threads/batch.
    for (SweepRow &row : rows) {
        if (row.kernels != "scalar") {
            for (const SweepRow &base : rows) {
                if (base.kernels == "scalar" &&
                    base.backend == row.backend &&
                    base.kvFormat == row.kvFormat &&
                    base.threads == row.threads &&
                    base.batch == row.batch &&
                    base.queriesPerSecond > 0.0) {
                    row.speedupVsScalar =
                        row.queriesPerSecond / base.queriesPerSecond;
                    break;
                }
            }
        }
        if (row.kvFormat != "int8" && row.kvFormat != "int4")
            continue;
        for (const SweepRow &base : rows) {
            if (base.kvFormat == "word32" &&
                base.kernels == row.kernels &&
                base.threads == row.threads &&
                base.batch == row.batch &&
                base.queriesPerSecond > 0.0) {
                row.speedupVsWord32 =
                    row.queriesPerSecond / base.queriesPerSecond;
                row.bytesRatioVsWord32 =
                    static_cast<double>(row.bytesPerQuery) /
                    static_cast<double>(base.bytesPerQuery);
                break;
            }
        }
    }

    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        std::printf("  {\"backend\": \"%s\", \"kv_format\": \"%s\", "
                    "\"kernels\": \"%s\", "
                    "\"batch\": %zu, \"threads\": %zu, "
                    "\"queries_per_second\": %.1f, "
                    "\"mean_batch_seconds\": %.3e, "
                    "\"stddev_batch_seconds\": %.3e, "
                    "\"repeats\": %zu, "
                    "\"speedup_vs_scalar\": %.2f, "
                    "\"bytes_per_query\": %zu, "
                    "\"qps_per_gb\": %.1f, "
                    "\"speedup_vs_word32\": %.2f, "
                    "\"bytes_ratio_vs_word32\": %.6f}%s\n",
                    r.backend.c_str(), r.kvFormat.c_str(),
                    r.kernels.c_str(), r.batch, r.threads,
                    r.queriesPerSecond, r.meanBatchSeconds,
                    r.stddevBatchSeconds, r.repeats, r.speedupVsScalar,
                    r.bytesPerQuery, r.qpsPerGb, r.speedupVsWord32,
                    r.bytesRatioVsWord32,
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");

    if (!csvPath.empty()) {
        CsvWriter csv(csvPath);
        csv.writeRow({"backend", "kv_format", "kernels", "batch",
                      "threads", "queries_per_second",
                      "mean_batch_seconds", "stddev_batch_seconds",
                      "repeats", "speedup_vs_scalar", "bytes_per_query",
                      "qps_per_gb", "speedup_vs_word32",
                      "bytes_ratio_vs_word32"});
        for (const SweepRow &r : rows) {
            csv.writeRow({r.backend, r.kvFormat, r.kernels,
                          std::to_string(r.batch),
                          std::to_string(r.threads),
                          std::to_string(r.queriesPerSecond),
                          std::to_string(r.meanBatchSeconds),
                          std::to_string(r.stddevBatchSeconds),
                          std::to_string(r.repeats),
                          std::to_string(r.speedupVsScalar),
                          std::to_string(r.bytesPerQuery),
                          std::to_string(r.qpsPerGb),
                          std::to_string(r.speedupVsWord32),
                          std::to_string(r.bytesRatioVsWord32)});
        }
    }
    return 0;
}
