/**
 * @file
 * AttentionEngine throughput sweep: queries/sec for batch sizes
 * {1, 16, 128} x thread counts {1, hardware_concurrency}, against one
 * preprocessed 320 x 64 conservative-approximation task (the BERT
 * shape of Section VI-A).
 *
 * Emits a JSON array on stdout (one object per configuration, timing
 * aggregated with util/stats' RunningStat); pass a path argument to
 * also dump the same rows as CSV via util/csv.
 *
 * Usage: engine_throughput [out.csv] [--repeats R]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "attention/approx_attention.hpp"
#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace a3;

struct SweepRow
{
    std::size_t batch = 0;
    std::size_t threads = 0;
    double queriesPerSecond = 0.0;
    double meanBatchSeconds = 0.0;
    double stddevBatchSeconds = 0.0;
    std::size_t repeats = 0;
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

SweepRow
measure(const AttentionEngine &engine, const ApproxAttention &backend,
        const std::vector<Vector> &queries, std::size_t repeats)
{
    // Warm-up pass: pulls the task into cache and spins the pool up.
    engine.run(backend, queries);

    RunningStat batchSeconds;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        const std::vector<AttentionResult> results =
            engine.run(backend, queries);
        batchSeconds.add(now() - start);
        if (results.size() != queries.size())
            fatal("engine dropped results");
    }

    SweepRow row;
    row.batch = queries.size();
    row.threads = engine.threads();
    row.meanBatchSeconds = batchSeconds.mean();
    row.stddevBatchSeconds = batchSeconds.stddev();
    // Best-of-repeats throughput: robust against scheduler noise.
    row.queriesPerSecond =
        static_cast<double>(queries.size()) / batchSeconds.min();
    row.repeats = batchSeconds.count();
    return row;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string csvPath;
    std::size_t repeats = 40;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0) {
            if (i + 1 >= argc)
                fatal("--repeats needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--repeats must be a positive integer, got \"",
                      argv[i], "\"");
            repeats = static_cast<std::size_t>(parsed);
        } else {
            csvPath = argv[i];
        }
    }

    // BERT shape: n = 320 rows, d = 64, conservative approximation.
    Rng rng(bench::benchSeed);
    const std::size_t n = 320;
    const std::size_t d = 64;
    Matrix key(n, d);
    Matrix value(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    const ApproxAttention backend(key, value,
                                  ApproxConfig::conservative());

    std::vector<Vector> pool(128);
    for (auto &q : pool) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    std::vector<std::size_t> threadCounts{1};
    if (hw > 1)
        threadCounts.push_back(hw);

    std::vector<SweepRow> rows;
    for (std::size_t threads : threadCounts) {
        const AttentionEngine engine(threads);
        for (std::size_t batch : {std::size_t{1}, std::size_t{16},
                                  std::size_t{128}}) {
            const std::vector<Vector> queries(pool.begin(),
                                              pool.begin() +
                                                  static_cast<long>(
                                                      batch));
            rows.push_back(
                measure(engine, backend, queries, repeats));
        }
    }

    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        std::printf("  {\"batch\": %zu, \"threads\": %zu, "
                    "\"queries_per_second\": %.1f, "
                    "\"mean_batch_seconds\": %.3e, "
                    "\"stddev_batch_seconds\": %.3e, "
                    "\"repeats\": %zu}%s\n",
                    r.batch, r.threads, r.queriesPerSecond,
                    r.meanBatchSeconds, r.stddevBatchSeconds,
                    r.repeats, i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");

    if (!csvPath.empty()) {
        CsvWriter csv(csvPath);
        csv.writeRow({"batch", "threads", "queries_per_second",
                      "mean_batch_seconds", "stddev_batch_seconds",
                      "repeats"});
        for (const SweepRow &r : rows) {
            csv.writeRow({std::to_string(r.batch),
                          std::to_string(r.threads),
                          std::to_string(r.queriesPerSecond),
                          std::to_string(r.meanBatchSeconds),
                          std::to_string(r.stddevBatchSeconds),
                          std::to_string(r.repeats)});
        }
    }
    return 0;
}
