/**
 * @file
 * Distributed shard-serving scaling and recovery, emitted as one
 * JSON object:
 *
 *  - "worker_count_sweep": fixed context, sweeping the worker-fleet
 *    size. Each row reports coordinator queries/sec over real
 *    shard_worker processes on AF_UNIX sockets and a bit_identical
 *    flag against the in-process ShardedBackend — the distributed
 *    tier must change *where* partials run, never *what* they are.
 *  - "kill_recovery": the acceptance experiment. A fleet serves at
 *    steady state, one worker is SIGKILLed under load, and the rows
 *    report the qps during the failover window, the recovered qps
 *    once the survivors have rebound the dead worker's shards, the
 *    recovered/steady ratio (acceptance: > 0.8), and the count of
 *    client queries that failed or returned non-bit-identical
 *    output (acceptance: 0 — the escalation ladder ends in local
 *    fallback, so runInto never fails).
 *
 * Usage: distributed_scaling [out.csv] [--workers W] [--rows N]
 *                            [--queries Q] [--repeats R]
 *                            [--worker-bin PATH]
 *   --workers W sets the kill-recovery fleet size (default 4; the
 *   CI smoke runs pass 2). --worker-bin defaults to the shard_worker
 *   next to this binary's build tree (../tools/shard_worker).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "attention/backend.hpp"
#include "bench_common.hpp"
#include "net/process.hpp"
#include "serving/remote_coordinator.hpp"
#include "serving/sharded_backend.hpp"
#include "tensor/matrix.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace a3;

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

bool
bitsEqual(const Vector &a, const Vector &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(float)) == 0);
}

/** Bitwise equality of everything a client can observe. */
bool
bitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    return bitsEqual(a.output, b.output) &&
           bitsEqual(a.weights, b.weights) &&
           bitsEqual(a.scores, b.scores) &&
           a.candidates == b.candidates && a.kept == b.kept;
}

/** A fleet of real shard_worker processes plus their specs. */
struct Fleet
{
    std::vector<ChildProcess> procs;
    std::vector<RemoteWorkerSpec> specs;
};

Fleet
spawnFleet(const std::string &workerBin, std::size_t count,
           const char *tag)
{
    Fleet fleet;
    fleet.procs.resize(count);
    for (std::size_t w = 0; w < count; ++w) {
        const std::string name =
            std::string(tag) + std::to_string(w);
        const std::string path = "/tmp/a3_dist_bench_" +
                                 std::to_string(getpid()) + "_" +
                                 name + ".sock";
        ::unlink(path.c_str());
        NetStatus status =
            fleet.procs[w].spawn(workerBin, {path, name});
        if (!status.ok())
            fatal("failed to spawn ", workerBin, ": ",
                  status.message);
        fleet.specs.push_back(unixWorkerSpec(name, path, 5.0));
    }
    return fleet;
}

struct SweepRow
{
    std::size_t workers = 0;
    std::size_t rows = 0;
    std::size_t dims = 0;
    std::size_t shards = 0;
    std::size_t replication = 0;
    double qps = 0.0;
    int bitIdentical = 1;
    std::size_t repeats = 0;
};

struct RecoveryRow
{
    std::size_t workers = 0;
    std::size_t rows = 0;
    std::size_t shards = 0;
    std::size_t replication = 0;
    double steadyQps = 0.0;
    /** qps of the batch that absorbs the SIGKILL + failover. */
    double failoverQps = 0.0;
    double recoveredQps = 0.0;
    double recoveredQpsRatio = 0.0;
    /** Queries that threw or returned non-identical bits. */
    std::size_t failedQueries = 0;
    int bitIdentical = 1;
    std::size_t failovers = 0;
    std::size_t rebinds = 0;
    std::size_t localFallbacks = 0;
    std::size_t queries = 0;
    std::size_t repeats = 0;
};

double
measureQps(const AttentionBackend &backend,
           const std::vector<Vector> &queries, std::size_t repeats)
{
    AttentionResult out;
    backend.runInto(queries.front(), out);  // warm-up
    RunningStat seconds;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        for (const Vector &q : queries)
            backend.runInto(q, out);
        seconds.add(now() - start);
    }
    return static_cast<double>(queries.size()) / seconds.min();
}

RemoteShardConfig
benchConfig(std::size_t totalRows, std::size_t workers,
            std::size_t replication)
{
    RemoteShardConfig config;
    // Two shards per worker so every worker owns context and the
    // kill redistributes real work.
    config.shardRows = std::max<std::size_t>(
        1, totalRows / (2 * std::max<std::size_t>(1, workers)));
    config.replication = replication;
    config.queryDeadlineSeconds = 1.0;
    config.maxRetries = 1;
    config.retryBackoffSeconds = 0.001;
    config.retryBackoffMaxSeconds = 0.01;
    return config;
}

SweepRow
measureWorkers(const std::string &workerBin, std::size_t workers,
               const Matrix &key, const Matrix &value,
               const AttentionBackend &sharded,
               const std::vector<Vector> &queries,
               std::size_t repeats)
{
    const EngineConfig inner;  // ExactFloat
    Fleet fleet = spawnFleet(workerBin, workers, "sweep");
    const std::size_t replication =
        std::min<std::size_t>(2, workers);
    RemoteShardCoordinator remote(
        inner, key, value, fleet.specs,
        benchConfig(key.rows(), workers, replication));

    SweepRow row;
    row.workers = workers;
    row.rows = key.rows();
    row.dims = key.cols();
    row.shards = remote.shardCount();
    row.replication = replication;
    row.qps = measureQps(remote, queries, repeats);
    row.repeats = repeats;

    AttentionResult got;
    AttentionResult want;
    for (const Vector &q : queries) {
        remote.runInto(q, got);
        sharded.runInto(q, want);
        if (!bitIdentical(got, want))
            row.bitIdentical = 0;
    }
    return row;
}

RecoveryRow
measureKillRecovery(const std::string &workerBin,
                    std::size_t workers, const Matrix &key,
                    const Matrix &value,
                    const AttentionBackend &sharded,
                    const std::vector<Vector> &queries,
                    std::size_t repeats)
{
    const EngineConfig inner;  // ExactFloat
    Fleet fleet = spawnFleet(workerBin, workers, "kill");
    const std::size_t replication =
        std::min<std::size_t>(2, workers);
    RemoteShardCoordinator remote(
        inner, key, value, fleet.specs,
        benchConfig(key.rows(), workers, replication));

    RecoveryRow row;
    row.workers = workers;
    row.rows = key.rows();
    row.shards = remote.shardCount();
    row.replication = replication;
    row.queries = queries.size();
    row.repeats = repeats;

    AttentionResult got;
    AttentionResult want;
    const auto verifyBatch = [&](std::size_t &failed) -> double {
        const double start = now();
        for (const Vector &q : queries) {
            try {
                remote.runInto(q, got);
            } catch (...) {
                ++failed;
                continue;
            }
            sharded.runInto(q, want);
            if (!bitIdentical(got, want))
                ++failed;
        }
        return static_cast<double>(queries.size()) /
               (now() - start);
    };

    row.steadyQps = measureQps(remote, queries, repeats);

    // SIGKILL one worker under load: the kernel closes its sockets
    // and the very next fan-out absorbs the failover + rebind cost.
    fleet.procs[workers / 2].kill();
    fleet.procs[workers / 2].wait();
    row.failoverQps = verifyBatch(row.failedQueries);

    // Re-replicate the dead worker's shards onto survivors, then
    // measure the recovered steady state.
    remote.heartbeat();
    row.recoveredQps = measureQps(remote, queries, repeats);
    row.recoveredQpsRatio = row.steadyQps > 0.0
                                ? row.recoveredQps / row.steadyQps
                                : 0.0;

    std::size_t failedAfter = 0;
    verifyBatch(failedAfter);
    row.failedQueries += failedAfter;
    row.bitIdentical = row.failedQueries == 0 ? 1 : 0;

    const RemoteCoordinatorStats stats = remote.stats();
    row.failovers = stats.failovers;
    row.rebinds = stats.rebinds;
    row.localFallbacks = stats.localFallbacks;
    return row;
}

void
printSweepRows(const char *label, const std::vector<SweepRow> &rows,
               bool last)
{
    std::printf("  \"%s\": [\n", label);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        std::printf("    {\"workers\": %zu, \"rows\": %zu, "
                    "\"dims\": %zu, \"shards\": %zu, "
                    "\"replication\": %zu, \"qps\": %.1f, "
                    "\"bit_identical\": %d, \"repeats\": %zu}%s\n",
                    r.workers, r.rows, r.dims, r.shards,
                    r.replication, r.qps, r.bitIdentical,
                    r.repeats, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]%s\n", last ? "" : ",");
}

void
printRecoveryRows(const char *label,
                  const std::vector<RecoveryRow> &rows, bool last)
{
    std::printf("  \"%s\": [\n", label);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RecoveryRow &r = rows[i];
        std::printf(
            "    {\"workers\": %zu, \"rows\": %zu, "
            "\"shards\": %zu, \"replication\": %zu, "
            "\"steady_qps\": %.1f, \"failover_qps\": %.1f, "
            "\"recovered_qps\": %.1f, "
            "\"recovered_qps_ratio\": %.3f, "
            "\"failed_queries\": %zu, \"bit_identical\": %d, "
            "\"failovers\": %zu, \"rebinds\": %zu, "
            "\"local_fallbacks\": %zu, \"queries\": %zu, "
            "\"repeats\": %zu}%s\n",
            r.workers, r.rows, r.shards, r.replication,
            r.steadyQps, r.failoverQps, r.recoveredQps,
            r.recoveredQpsRatio, r.failedQueries, r.bitIdentical,
            r.failovers, r.rebinds, r.localFallbacks, r.queries,
            r.repeats, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]%s\n", last ? "" : ",");
}

std::string
defaultWorkerBin(const char *argv0)
{
    const std::string self(argv0);
    const std::size_t slash = self.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : self.substr(0, slash);
    return dir + "/../tools/shard_worker";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string csvPath;
    std::size_t workers = 4;
    std::size_t totalRows = 2048;
    std::size_t queryCount = 32;
    std::size_t repeats = 5;
    std::string workerBin = defaultWorkerBin(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0) {
            if (i + 1 >= argc)
                fatal("--workers needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed < 1)
                fatal("--workers must be a positive integer, got "
                      "\"", argv[i], "\"");
            workers = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--rows") == 0) {
            if (i + 1 >= argc)
                fatal("--rows needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed < 64)
                fatal("--rows must be at least 64, got \"",
                      argv[i], "\"");
            totalRows = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--queries") == 0) {
            if (i + 1 >= argc)
                fatal("--queries needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed < 1)
                fatal("--queries must be a positive integer, got "
                      "\"", argv[i], "\"");
            queryCount = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--repeats") == 0) {
            if (i + 1 >= argc)
                fatal("--repeats needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--repeats must be a positive integer, got "
                      "\"", argv[i], "\"");
            repeats = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--worker-bin") == 0) {
            if (i + 1 >= argc)
                fatal("--worker-bin needs a value");
            workerBin = argv[++i];
        } else {
            csvPath = argv[i];
        }
    }
    if (::access(workerBin.c_str(), X_OK) != 0)
        fatal("shard_worker binary not executable: \"", workerBin,
              "\" (build it or pass --worker-bin)");

    const std::size_t d = 64;
    Rng rng(bench::benchSeed);
    const Matrix key = randomMatrix(rng, totalRows, d);
    const Matrix value = randomMatrix(rng, totalRows, d);

    std::vector<Vector> queries(queryCount);
    for (auto &q : queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    // --- Worker-count sweep vs the bit-identity reference. Each
    // fleet uses its own shard layout, so the reference is rebuilt
    // with the matching shardRows.
    std::vector<SweepRow> sweepRows;
    std::vector<std::size_t> fleetSizes{1, 2};
    if (workers > 2)
        fleetSizes.push_back(workers);
    for (const std::size_t count : fleetSizes) {
        const EngineConfig inner;
        ShardedConfig ref;
        ref.shardRows = benchConfig(totalRows, count,
                                    std::min<std::size_t>(2, count))
                            .shardRows;
        const ShardedBackend sharded(inner, key, value, ref);
        sweepRows.push_back(measureWorkers(workerBin, count, key,
                                           value, sharded, queries,
                                           repeats));
    }

    // --- Kill-one-worker recovery at the requested fleet size.
    std::vector<RecoveryRow> recoveryRows;
    {
        const EngineConfig inner;
        ShardedConfig ref;
        ref.shardRows =
            benchConfig(totalRows, workers,
                        std::min<std::size_t>(2, workers))
                .shardRows;
        const ShardedBackend sharded(inner, key, value, ref);
        recoveryRows.push_back(
            measureKillRecovery(workerBin, workers, key, value,
                                sharded, queries, repeats));
    }

    std::printf("{\n");
    printSweepRows("worker_count_sweep", sweepRows, false);
    printRecoveryRows("kill_recovery", recoveryRows, true);
    std::printf("}\n");

    if (!csvPath.empty()) {
        CsvWriter csv(csvPath);
        csv.writeRow({"sweep", "workers", "rows", "shards",
                      "replication", "qps", "steady_qps",
                      "failover_qps", "recovered_qps",
                      "recovered_qps_ratio", "failed_queries",
                      "bit_identical"});
        for (const SweepRow &r : sweepRows) {
            csv.writeRow({"worker_count_sweep",
                          std::to_string(r.workers),
                          std::to_string(r.rows),
                          std::to_string(r.shards),
                          std::to_string(r.replication),
                          std::to_string(r.qps), "", "", "", "", "",
                          std::to_string(r.bitIdentical)});
        }
        for (const RecoveryRow &r : recoveryRows) {
            csv.writeRow({"kill_recovery",
                          std::to_string(r.workers),
                          std::to_string(r.rows),
                          std::to_string(r.shards),
                          std::to_string(r.replication), "",
                          std::to_string(r.steadyQps),
                          std::to_string(r.failoverQps),
                          std::to_string(r.recoveredQps),
                          std::to_string(r.recoveredQpsRatio),
                          std::to_string(r.failedQueries),
                          std::to_string(r.bitIdentical)});
        }
    }
    return 0;
}
