/**
 * @file
 * Figure 3: portion of time accountable to the attention mechanism,
 * for the whole inference and for the query-response path.
 *
 * The attention term is the analytic CPU kernel time (validated
 * against a live measurement printed alongside); the comprehension and
 * other-work terms come from each workload's TimeShareProfile, which
 * is calibrated to the profile the paper reports (Section II-B).
 */

#include <cstdio>

#include "baseline/cpu_baseline.hpp"
#include "baseline/device_models.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

int
main()
{
    using namespace a3;

    Table table("Figure 3: attention share of execution time");
    table.setHeader({"workload", "attention(us/query)",
                     "whole-inference share", "paper",
                     "query-response share", "paper"});

    // Paper reads off Figure 3 (approximate bar heights).
    const double paperTotal[] = {0.40, 0.45, 0.36};
    const double paperQuery[] = {0.80, 0.75, 0.36};

    const auto workloads = makeAllWorkloads();
    CpuTimingModel cpu;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = *workloads[i];
        const std::size_t n = w.typicalRows();
        const std::size_t d = w.dims();
        TimeShareModel m;
        m.workload = w.name();
        m.attentionSec = w.selfAttention()
                             ? cpu.batchedSeconds(n, d, n)
                             : cpu.singleQuerySeconds(n, d);
        const TimeShareProfile p = w.timeShare();
        m.comprehensionSec =
            p.comprehensionOverAttention * m.attentionSec;
        m.otherQuerySec = p.otherQueryOverAttention * m.attentionSec;

        table.addRow({w.name(), Table::num(m.attentionSec * 1e6, 2),
                      Table::percent(m.attentionShareTotal()),
                      Table::percent(paperTotal[i]),
                      Table::percent(m.attentionShareQueryTime()),
                      Table::percent(paperQuery[i])});
    }
    table.print();

    // Honesty check: measure the actual dense kernel on this host so
    // the analytic attention term can be compared against something
    // real (the analytic one includes framework dispatch overhead that
    // a bare C++ kernel does not pay).
    Table measured("Host-measured dense attention kernel (no framework "
                   "overhead)");
    measured.setHeader({"n x d", "us/op (measured)",
                        "us/op (model, incl. dispatch)"});
    for (std::size_t n : {20u, 186u, 320u}) {
        const CpuMeasurement meas = measureCpuAttention(n, 64, 200);
        measured.addRow(
            {std::to_string(n) + " x 64",
             Table::num(meas.secondsPerOp * 1e6, 2),
             Table::num(cpu.singleQuerySeconds(n, 64) * 1e6, 2)});
    }
    measured.print();

    std::printf("Claim check: attention exceeds 35%% of inference time "
                "for every workload,\nand 70%% of query-response time "
                "for the memory networks (Section II-B).\n");
    return 0;
}
