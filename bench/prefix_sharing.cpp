/**
 * @file
 * Cross-session prefix sharing and spill-tier benchmark, emitted as
 * one JSON object:
 *
 *  - "shared_capacity": 8 sessions bound over one document, with and
 *    without a ShardStore. Unshared, every session pays its full
 *    logical bytes; shared, identical frozen shards are charged once,
 *    so the cache holds the same 8 sessions in a fraction of the
 *    budget. session_capacity_ratio (unshared total / shared charged)
 *    is the headline number and is deterministic — pure byte
 *    accounting, no timing.
 *  - "warm_rebind": cold bind (full preprocessing) vs warm re-bind
 *    through a fresh ShardStore over an already-populated spill
 *    directory (mmap + decode, no recomputation), per backend kind.
 *    speedup_warm_vs_cold gates the spill tier's reason to exist;
 *    bit_identical confirms restored answers match the cold bind
 *    exactly.
 *  - "zipf_reuse": a request stream over D documents with Zipf
 *    popularity driving bind/evict churn through a budget-capped
 *    SessionCache backed by a spilling ShardStore. store_hit_rate is
 *    the fraction of shard acquisitions served without recomputation
 *    (live dedup or spill restore) — deterministic for the fixed
 *    seed.
 *
 * Usage: prefix_sharing [--repeats R] [--max-rows N]
 *   --max-rows N scales the document size down for CI smoke runs.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "bench_common.hpp"
#include "serving/session_cache.hpp"
#include "serving/shard_store.hpp"
#include "serving/sharded_backend.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using namespace a3;

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

/** Fresh unique spill directory; removed by the destructor. */
class TempSpillDir
{
  public:
    TempSpillDir()
    {
        char templ[] = "/tmp/a3_prefix_bench_XXXXXX";
        const char *made = mkdtemp(templ);
        if (made == nullptr)
            fatal("mkdtemp failed for the bench spill dir");
        path_ = made;
    }

    ~TempSpillDir()
    {
        const std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
bitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    return a.output == b.output && a.weights == b.weights &&
           a.scores == b.scores && a.candidates == b.candidates &&
           a.kept == b.kept && a.iterations == b.iterations;
}

// --- 8 sessions over one document, shared vs unshared --------------

struct SharedCapacityRow
{
    std::string backend;
    std::size_t sessions = 0;
    std::size_t rows = 0;
    std::size_t shards = 0;
    std::size_t logicalBytesPerSession = 0;
    std::size_t unsharedBytes = 0;
    std::size_t sharedBytes = 0;
    double sessionCapacityRatio = 0.0;
};

SharedCapacityRow
measureSharedCapacity(EngineKind kind, std::size_t sessions,
                      std::size_t n, std::size_t d,
                      std::size_t shardRows)
{
    Rng rng(bench::benchSeed);
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    EngineConfig engine;
    engine.kind = kind;

    // Unshared: the legacy private-shard path; every session charges
    // its full footprint.
    SessionCacheConfig unsharedConfig;
    unsharedConfig.engine = engine;
    unsharedConfig.shardRows = shardRows;
    SessionCache unshared(unsharedConfig);
    for (std::size_t s = 0; s < sessions; ++s)
        unshared.bindSession("session-" + std::to_string(s), key,
                             value);

    // Shared: every frozen shard of the document is charged once no
    // matter how many sessions bind it.
    ShardStore store;
    SessionCacheConfig sharedConfig;
    sharedConfig.engine = engine;
    sharedConfig.shardRows = shardRows;
    sharedConfig.store = &store;
    SessionCache shared(sharedConfig);
    BindOutcome last;
    for (std::size_t s = 0; s < sessions; ++s)
        last = shared.bindSession("session-" + std::to_string(s), key,
                                  value);

    SharedCapacityRow row;
    row.backend = engineKindName(kind);
    row.sessions = sessions;
    row.rows = n;
    row.shards = last.shardCount;
    row.logicalBytesPerSession = last.logicalBytes;
    row.unsharedBytes = unshared.bytesInUse();
    row.sharedBytes = shared.bytesInUse();
    row.sessionCapacityRatio =
        row.sharedBytes > 0
            ? static_cast<double>(row.unsharedBytes) /
                  static_cast<double>(row.sharedBytes)
            : 0.0;
    return row;
}

// --- Warm spill re-bind vs cold recompute --------------------------

struct WarmRebindRow
{
    std::string backend;
    std::size_t rows = 0;
    std::size_t shards = 0;
    double coldBindSeconds = 0.0;
    double warmRebindSeconds = 0.0;
    double speedupWarmVsCold = 0.0;
    /** 1 when every warm answer matched the cold bind exactly. */
    int bitIdentical = 0;
    std::size_t repeats = 0;
};

WarmRebindRow
measureWarmRebind(EngineKind kind, std::size_t n, std::size_t d,
                  std::size_t shardRows, std::size_t repeats)
{
    Rng rng(bench::benchSeed + 1);
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const Vector query = randomQuery(rng, d);
    EngineConfig engine;
    engine.kind = kind;

    ShardedConfig shardedConfig;
    shardedConfig.shardRows = shardRows;

    // Cold: full preprocessing, no store involved.
    AttentionResult coldAnswer;
    RunningStat cold;
    std::size_t shards = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double start = now();
        ShardedBackend backend(engine, key, value, shardedConfig);
        cold.add(now() - start);
        shards = backend.shardCount();
        if (r == 0)
            backend.runInto(query, coldAnswer);
    }

    // Populate the spill tier once, then drop every live handle so
    // each warm re-bind must come from disk.
    TempSpillDir dir;
    {
        ShardStore store({dir.path(), 0});
        ShardedConfig withStore = shardedConfig;
        withStore.store = &store;
        ShardedBackend backend(engine, key, value, withStore);
        if (store.spillCount() != backend.shardCount())
            fatal("spill tier did not capture every shard");
    }

    // Warm: a fresh store over the populated directory restores
    // every shard from its image instead of recomputing.
    bool identical = true;
    RunningStat warm;
    for (std::size_t r = 0; r < repeats; ++r) {
        ShardStore store({dir.path(), 0});
        ShardedConfig withStore = shardedConfig;
        withStore.store = &store;
        const double start = now();
        ShardedBackend backend(engine, key, value, withStore);
        warm.add(now() - start);
        if (backend.bindRestoredShards() != backend.shardCount())
            fatal("warm re-bind fell back to cold preprocessing");
        AttentionResult warmAnswer;
        backend.runInto(query, warmAnswer);
        identical = identical && bitIdentical(warmAnswer, coldAnswer);
    }

    WarmRebindRow row;
    row.backend = engineKindName(kind);
    row.rows = n;
    row.shards = shards;
    row.coldBindSeconds = cold.mean();
    row.warmRebindSeconds = warm.mean();
    row.speedupWarmVsCold =
        warm.mean() > 0.0 ? cold.mean() / warm.mean() : 0.0;
    row.bitIdentical = identical ? 1 : 0;
    row.repeats = repeats;
    return row;
}

// --- Zipf-popular documents through a budget-capped cache ----------

struct ZipfRow
{
    std::size_t documents = 0;
    std::size_t requests = 0;
    std::size_t rowsPerDocument = 0;
    double zipfExponent = 0.0;
    std::uint64_t sessionHits = 0;
    std::uint64_t binds = 0;
    std::uint64_t liveHits = 0;
    std::uint64_t spillRestores = 0;
    std::uint64_t coldBinds = 0;
    /** Shard acquisitions served without recomputation. */
    double storeHitRate = 0.0;
};

ZipfRow
measureZipfReuse(std::size_t documents, std::size_t requests,
                 std::size_t n, std::size_t d, std::size_t shardRows,
                 double exponent)
{
    Rng rng(bench::benchSeed + 2);
    EngineConfig engine;
    engine.kind = EngineKind::ExactQuantized;

    std::vector<Matrix> keys;
    std::vector<Matrix> values;
    for (std::size_t doc = 0; doc < documents; ++doc) {
        keys.push_back(randomMatrix(rng, n, d));
        values.push_back(randomMatrix(rng, n, d));
    }

    // Zipf CDF over document ranks: popularity ~ 1 / rank^exponent.
    std::vector<double> cdf(documents);
    double total = 0.0;
    for (std::size_t doc = 0; doc < documents; ++doc) {
        total += 1.0 /
                 std::pow(static_cast<double>(doc + 1), exponent);
        cdf[doc] = total;
    }

    // The cache budget fits roughly a quarter of the documents, so
    // the unpopular tail churns through eviction while the spill
    // tier keeps its shards restorable.
    TempSpillDir dir;
    ShardStore store({dir.path(), 0});
    const std::size_t perDoc =
        makeBackend(engine, keys[0], values[0])->memoryBytes();
    SessionCacheConfig config;
    config.byteBudget = perDoc * documents / 4;
    config.engine = engine;
    config.shardRows = shardRows;
    config.store = &store;
    SessionCache cache(config);

    ZipfRow row;
    row.documents = documents;
    row.requests = requests;
    row.rowsPerDocument = n;
    row.zipfExponent = exponent;
    for (std::size_t r = 0; r < requests; ++r) {
        const double pick = rng.uniform(0.0, total);
        std::size_t doc = 0;
        while (doc + 1 < documents && cdf[doc] < pick)
            ++doc;
        const std::string id = "doc-" + std::to_string(doc);
        if (cache.lookupSession(id).valid()) {
            ++row.sessionHits;
            continue;
        }
        cache.bindSession(id, keys[doc], values[doc]);
        ++row.binds;
    }

    const ShardStoreStats stats = store.stats();
    row.liveHits = stats.liveHits;
    row.spillRestores = stats.spillRestores;
    row.coldBinds = stats.coldBinds;
    const std::uint64_t acquired =
        stats.liveHits + stats.spillRestores + stats.coldBinds;
    row.storeHitRate =
        acquired > 0 ? static_cast<double>(stats.liveHits +
                                           stats.spillRestores) /
                           static_cast<double>(acquired)
                     : 0.0;
    return row;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::size_t repeats = 10;
    std::size_t maxRows = 6144;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeats") == 0) {
            if (i + 1 >= argc)
                fatal("--repeats needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--repeats must be a positive integer, got \"",
                      argv[i], "\"");
            repeats = static_cast<std::size_t>(parsed);
        } else if (std::strcmp(argv[i], "--max-rows") == 0) {
            if (i + 1 >= argc)
                fatal("--max-rows needs a value");
            const long parsed = std::atol(argv[++i]);
            if (parsed <= 0)
                fatal("--max-rows must be a positive integer, got \"",
                      argv[i], "\"");
            maxRows = static_cast<std::size_t>(parsed);
        } else {
            fatal("unknown argument \"", argv[i], "\"");
        }
    }

    const std::size_t d = 64;
    // Document size and shard capacity scale with --max-rows so the
    // CI smoke run stays fast; the document always spans 3 shards
    // with no remainder, the all-frozen all-shareable shape.
    const std::size_t n = std::min<std::size_t>(6144, maxRows) / 3 * 3;
    const std::size_t shardRows = n / 3;

    // --- Shared vs unshared byte accounting, 8 sessions, one doc.
    std::vector<SharedCapacityRow> capacityRows;
    for (const EngineKind kind :
         {EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        capacityRows.push_back(
            measureSharedCapacity(kind, 8, n, d, shardRows));
    }

    // --- Warm spill re-bind vs cold recompute.
    std::vector<WarmRebindRow> warmRows;
    for (const EngineKind kind :
         {EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        warmRows.push_back(
            measureWarmRebind(kind, n, d, shardRows, repeats));
    }

    // --- Zipf-popular document stream.
    const ZipfRow zipf = measureZipfReuse(
        12, 200, std::max<std::size_t>(shardRows / 2, 64) * 2, d,
        std::max<std::size_t>(shardRows / 2, 64), 1.1);

    std::printf("{\n  \"shared_capacity\": [\n");
    for (std::size_t i = 0; i < capacityRows.size(); ++i) {
        const SharedCapacityRow &r = capacityRows[i];
        std::printf(
            "    {\"backend\": \"%s\", \"sessions\": %zu, "
            "\"rows\": %zu, \"shards\": %zu, "
            "\"logical_bytes_per_session\": %zu, "
            "\"unshared_bytes\": %zu, \"shared_bytes\": %zu, "
            "\"session_capacity_ratio\": %.2f}%s\n",
            r.backend.c_str(), r.sessions, r.rows, r.shards,
            r.logicalBytesPerSession, r.unsharedBytes, r.sharedBytes,
            r.sessionCapacityRatio,
            i + 1 < capacityRows.size() ? "," : "");
    }
    std::printf("  ],\n  \"warm_rebind\": [\n");
    for (std::size_t i = 0; i < warmRows.size(); ++i) {
        const WarmRebindRow &r = warmRows[i];
        std::printf(
            "    {\"backend\": \"%s\", \"rows\": %zu, "
            "\"shards\": %zu, \"cold_bind_seconds\": %.3e, "
            "\"warm_rebind_seconds\": %.3e, "
            "\"speedup_warm_vs_cold\": %.1f, "
            "\"bit_identical\": %d, \"repeats\": %zu}%s\n",
            r.backend.c_str(), r.rows, r.shards, r.coldBindSeconds,
            r.warmRebindSeconds, r.speedupWarmVsCold, r.bitIdentical,
            r.repeats, i + 1 < warmRows.size() ? "," : "");
    }
    std::printf("  ],\n  \"zipf_reuse\": [\n");
    std::printf(
        "    {\"documents\": %zu, \"requests\": %zu, "
        "\"rows_per_document\": %zu, \"zipf_exponent\": %.2f, "
        "\"session_hits\": %llu, \"binds\": %llu, "
        "\"live_hits\": %llu, \"spill_restores\": %llu, "
        "\"cold_binds\": %llu, \"store_hit_rate\": %.3f}\n",
        zipf.documents, zipf.requests, zipf.rowsPerDocument,
        zipf.zipfExponent,
        static_cast<unsigned long long>(zipf.sessionHits),
        static_cast<unsigned long long>(zipf.binds),
        static_cast<unsigned long long>(zipf.liveHits),
        static_cast<unsigned long long>(zipf.spillRestores),
        static_cast<unsigned long long>(zipf.coldBinds),
        zipf.storeHitRate);
    std::printf("  ]\n}\n");
    return 0;
}
