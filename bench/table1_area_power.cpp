/**
 * @file
 * Table I: area and power characteristics of A3, plus the die-size
 * comparison against the reference CPU and GPU (Section VI-D).
 */

#include <cstdio>

#include "energy/power_model.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    Table table("Table I: area and power characteristics of A3 "
                "(TSMC 40nm, 1 GHz)");
    table.setHeader(
        {"module", "area (mm2)", "dynamic (mW)", "static (mW)"});
    for (const ModulePower &m : table1::allModules()) {
        table.addRow({m.name, Table::num(m.areaMm2, 3),
                      Table::num(m.dynamicMw, 3),
                      Table::num(m.staticMw, 3)});
    }
    const ModulePower total = table1::fullTotal();
    table.addRow({"Total (A3)", Table::num(total.areaMm2, 3),
                  Table::num(total.dynamicMw, 2),
                  Table::num(total.staticMw, 3)});
    const ModulePower base = table1::baseTotal();
    table.addRow({"Total (base modules only)",
                  Table::num(base.areaMm2, 3),
                  Table::num(base.dynamicMw, 2),
                  Table::num(base.staticMw, 3)});
    table.print();

    Table devices("Die-size comparison (Section VI-D)");
    devices.setHeader(
        {"device", "process", "die (mm2)", "x A3 area", "TDP (W)"});
    for (const ReferenceDevice &dev : {xeonGold6128(), titanV()}) {
        devices.addRow({dev.name, std::to_string(dev.processNm) + "nm",
                        Table::num(dev.dieAreaMm2, 0),
                        Table::ratio(dev.dieAreaMm2 / total.areaMm2, 0),
                        Table::num(dev.tdpW, 0)});
    }
    devices.addRow({"A3 (this work)", "40nm",
                    Table::num(total.areaMm2, 3), "1x",
                    Table::num((total.dynamicMw + total.staticMw) *
                                   1e-3,
                               3)});
    devices.print();

    std::printf("Paper checks: 2.082 mm2 total area, <100 mW dynamic; "
                "CPU die 156x, GPU die 391x one A3 unit.\n");
    return 0;
}
