/**
 * @file
 * Figure 12: impact of post-scoring selection across thresholds
 * T in {1, 2.5, 5, 10, 20}% of the maximum post-softmax weight.
 *
 * Candidate selection is disabled so the sweep isolates post-scoring.
 * Panel (a): task metric. Panel (b): kept entries normalized to n.
 */

#include "bench_common.hpp"
#include "harness/accuracy.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    // Paper values: {no-approx, T=1, 2.5, 5, 10, 20}% (Figure 12a).
    const double paperMetric[3][6] = {
        {0.826, 0.827, 0.826, 0.826, 0.826, 0.825},
        {0.620, 0.621, 0.622, 0.624, 0.626, 0.629},
        {0.888, 0.889, 0.887, 0.885, 0.867, 0.841},
    };
    const double thresholds[] = {1.0, 2.5, 5.0, 10.0, 20.0};

    const auto workloads = makeAllWorkloads();
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = *workloads[wi];
        const std::size_t episodes = bench::episodesFor(w);

        Table table("Figure 12 (" + w.name() + ", metric: " +
                    w.metricName() + ")");
        table.setHeader(
            {"config", "metric", "paper", "norm. entries (12b)"});

        EngineConfig exact;
        exact.kind = EngineKind::ExactFloat;
        const AccuracyReport base =
            evaluateAccuracy(w, exact, episodes, bench::benchSeed);
        table.addRow({"No Approximation", Table::num(base.metric),
                      Table::num(paperMetric[wi][0]), "1.000"});

        for (std::size_t t = 0; t < 5; ++t) {
            EngineConfig cfg;
            cfg.kind = EngineKind::ApproxFloat;
            cfg.approx = ApproxConfig();
            cfg.approx.candidateSelection = false;
            cfg.approx.thresholdPercent = thresholds[t];
            const AccuracyReport r =
                evaluateAccuracy(w, cfg, episodes, bench::benchSeed);
            table.addRow({"T=" + Table::num(thresholds[t], 1) + "%",
                          Table::num(r.metric),
                          Table::num(paperMetric[wi][t + 1]),
                          Table::num(r.normalizedKept)});
        }
        table.print();
    }
    return 0;
}
