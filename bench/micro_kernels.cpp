/**
 * @file
 * Google-benchmark microbenchmarks for the software kernels: exact
 * attention, the two greedy-search implementations, preprocessing,
 * and the bit-accurate fixed-point pipeline.
 *
 * These support the complexity claims of Section IV: the efficient
 * greedy search's query-time cost scales with M (not n*d), while the
 * base form pays the full O(nd log nd) sort.
 */

#include <benchmark/benchmark.h>

#include "attention/approx_attention.hpp"
#include "attention/candidate_search.hpp"
#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "engine/engine.hpp"
#include "kernels/kernels.hpp"
#include "util/random.hpp"

namespace {

using namespace a3;

struct Fixture
{
    Matrix key;
    Matrix value;
    Vector query;
    SortedKey sorted;
};

Fixture
makeFixture(std::size_t n, std::size_t d)
{
    Rng rng(42);
    Fixture f;
    f.key = Matrix(n, d);
    f.value = Matrix(n, d);
    f.query.resize(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            f.key(r, c) = static_cast<float>(rng.normal());
            f.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    for (auto &x : f.query)
        x = static_cast<float>(rng.normal());
    f.sorted = SortedKey::build(f.key);
    return f;
}

void
BM_ReferenceAttention(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            referenceAttention(f.key, f.value, f.query));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceAttention)->Arg(20)->Arg(186)->Arg(320);

void
BM_BaseGreedySearch(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    const std::size_t m = n / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baseGreedySearch(f.key, f.query, m));
    }
}
BENCHMARK(BM_BaseGreedySearch)->Arg(20)->Arg(186)->Arg(320);

void
BM_EfficientGreedySearch(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    const std::size_t m = n / 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            efficientGreedySearch(f.sorted, f.query, m));
    }
}
BENCHMARK(BM_EfficientGreedySearch)->Arg(20)->Arg(186)->Arg(320);

void
BM_SortedKeyPreprocess(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(SortedKey::build(f.key));
}
BENCHMARK(BM_SortedKeyPreprocess)->Arg(320);

void
BM_ApproxAttentionEndToEnd(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    const ApproxAttention engine(f.key, f.value,
                                 ApproxConfig::conservative());
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run(f.query));
}
BENCHMARK(BM_ApproxAttentionEndToEnd)->Arg(186)->Arg(320);

void
BM_QuantizedPipeline(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    const QuantizedAttention qa(4, 4, n, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(qa.run(f.key, f.value, f.query));
}
BENCHMARK(BM_QuantizedPipeline)->Arg(320);

void
BM_EngineBatch(benchmark::State &state)
{
    // 64 queries against one preprocessed backend through the shared
    // AttentionEngine; compare against 64x BM_ApproxAttentionEndToEnd
    // for the batching + threading win.
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fixture f = makeFixture(n, 64);
    const ApproxAttention backend(f.key, f.value,
                                  ApproxConfig::conservative());
    Rng rng(7);
    std::vector<Vector> batch(64, f.query);
    for (auto &q : batch)
        for (auto &x : q)
            x += 0.05f * static_cast<float>(rng.normal());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            AttentionEngine::shared().run(backend, batch));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EngineBatch)->Arg(186)->Arg(320);

// ------------------------------------------------------------ kernels
// Per-primitive scalar-vs-SIMD comparison for the kernels layer; the
// 0/1 argument selects the table (0 = scalar, 1 = the widest table
// selectKernels() would pick), so pairs of lines give the per-kernel
// speedup directly.

const Kernels &
tableFor(std::int64_t variant)
{
    return variant == 0 ? scalarKernels() : selectKernels();
}

void
BM_KernelDot(benchmark::State &state)
{
    const Kernels &k = tableFor(state.range(0));
    const Fixture f = makeFixture(2, 512);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            k.dot(f.key.data().data(), f.value.data().data(), 512));
    }
    state.SetLabel(kernelIsaName(k.isa));
}
BENCHMARK(BM_KernelDot)->Arg(0)->Arg(1);

void
BM_KernelGatherDot(benchmark::State &state)
{
    // The approx scoring shape: 160 candidate rows out of 320, d = 64.
    const Kernels &k = tableFor(state.range(0));
    const Fixture f = makeFixture(320, 64);
    std::vector<std::uint32_t> rows(160);
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = static_cast<std::uint32_t>(2 * i);
    Vector out(rows.size());
    for (auto _ : state) {
        k.gatherDot(f.key.data().data(), 64, rows.data(), rows.size(),
                    f.query.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(kernelIsaName(k.isa));
}
BENCHMARK(BM_KernelGatherDot)->Arg(0)->Arg(1);

void
BM_KernelGatherWeightedSum(benchmark::State &state)
{
    const Kernels &k = tableFor(state.range(0));
    const Fixture f = makeFixture(320, 64);
    std::vector<std::uint32_t> rows(160);
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = static_cast<std::uint32_t>(2 * i);
    Vector weights(rows.size(), 1.0f / 160.0f);
    Vector out(64);
    for (auto _ : state) {
        std::fill(out.begin(), out.end(), 0.0f);
        k.gatherWeightedSum(f.value.data().data(), 64, rows.data(),
                            rows.size(), weights.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(kernelIsaName(k.isa));
}
BENCHMARK(BM_KernelGatherWeightedSum)->Arg(0)->Arg(1);

void
BM_KernelSoftmaxPath(benchmark::State &state)
{
    // maxReduce + expSumInPlace + divideBy over n = 320 scores.
    const Kernels &k = tableFor(state.range(0));
    const Fixture f = makeFixture(320, 2);
    const Vector scores = f.key.column(0);
    Vector work(scores.size());
    for (auto _ : state) {
        std::copy(scores.begin(), scores.end(), work.begin());
        const float maxVal = k.maxReduce(work.data(), work.size());
        const float sum =
            k.expSumInPlace(work.data(), work.size(), maxVal);
        k.divideBy(work.data(), work.size(), sum);
        benchmark::DoNotOptimize(work.data());
    }
    state.SetLabel(kernelIsaName(k.isa));
}
BENCHMARK(BM_KernelSoftmaxPath)->Arg(0)->Arg(1);

}  // namespace
