/**
 * @file
 * Figure 15: energy efficiency (attention operations per joule,
 * normalized to the CPU) and the per-module energy breakdown.
 *
 * A3 energy combines Table I power constants with simulated per-module
 * activity; CPU/GPU energy assumes TDP over the modeled runtime, as
 * Section VI-D does.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "harness/performance.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace a3;

    // Paper's base-A3-normalized efficiency annotations (Figure 15a):
    // {base, conservative, aggressive}.
    const double paperEff[3][3] = {
        {1.0, 1.4, 2.99},
        {1.0, 2.89, 9.86},
        {1.0, 3.74, 11.65},
    };

    const auto workloads = makeAllWorkloads();
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = *workloads[wi];
        PerfOptions opts;
        opts.episodes = w.selfAttention() ? 4 : 16;
        opts.queriesPerEpisode = 16;
        opts.seed = bench::benchSeed;
        const auto rows = evaluatePerformance(w, opts);

        const double cpuEff = 1.0 / rows[0].energyPerOpJ;
        const double baseEff = 1.0 / rows[2].energyPerOpJ;

        Table table("Figure 15a (" + w.name() + "): ops/joule");
        table.setHeader({"device", "nJ/op", "ops/J vs CPU",
                         "vs BaseA3", "paper"});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const PerfResult &r = rows[i];
            if (!r.available) {
                table.addRow(
                    {r.device, "-", "model not available", "-", "-"});
                continue;
            }
            const double eff = 1.0 / r.energyPerOpJ;
            std::string paper = "-";
            if (i >= 2)
                paper = Table::ratio(paperEff[wi][i - 2]);
            table.addRow({r.device, Table::num(r.energyPerOpJ * 1e9),
                          Table::ratio(eff / cpuEff, 1),
                          Table::ratio(eff / baseEff), paper});
        }
        table.print();

        Table split("Figure 15b (" + w.name() +
                    "): A3 energy breakdown");
        split.setHeader({"config", "cand.sel", "dot", "exp(+PS)",
                         "output", "memory"});
        for (std::size_t i = 2; i < rows.size(); ++i) {
            const auto f = rows[i].breakdown.fractions();
            split.addRow({rows[i].device, Table::percent(f[0]),
                          Table::percent(f[1]), Table::percent(f[2]),
                          Table::percent(f[3]), Table::percent(f[4])});
        }
        split.print();
    }

    std::printf("Paper claims: >10^4x CPU and >10^3x GPU efficiency; "
                "base A3 dominated by output computation,\napprox A3 "
                "by candidate selection (Section VI-D).\n");
    return 0;
}
