/**
 * @file
 * Question answering with approximate attention — the MemN2N / bAbI
 * scenario the paper's introduction motivates (Figure 2).
 *
 * An episode is a set of embedded "statements" and one embedded
 * question; the attention mechanism must place its weight on the
 * statement that answers the question. This example runs a batch of
 * episodes through exact attention and both approximate presets and
 * reports retrieval accuracy plus how much work approximation saved.
 */

#include <cstdio>
#include <memory>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "workloads/babi_like.hpp"
#include "workloads/metrics.hpp"

int
main()
{
    using namespace a3;

    BabiLikeWorkload workload;
    Rng rng(11);
    const int episodes = 400;

    struct Config
    {
        const char *label;
        ApproxConfig approx;
    } configs[] = {
        {"exact", ApproxConfig::exact()},
        {"conservative (M=n/2, T=5%)", ApproxConfig::conservative()},
        {"aggressive   (M=n/8, T=10%)", ApproxConfig::aggressive()},
    };

    std::printf("%-30s %9s %12s %12s\n", "configuration", "accuracy",
                "avg rows", "rows scored");
    for (const Config &cfg : configs) {
        Rng episodeRng(rng.split());

        // Each episode is one request group: its own preprocessed
        // backend (the per-story comprehension work) plus the question
        // asked against it. The engine flattens all groups into one
        // work list and answers them across its thread pool.
        EngineConfig engineCfg;
        engineCfg.kind = EngineKind::ApproxFloat;
        engineCfg.approx = cfg.approx;
        std::vector<AttentionTask> tasks;
        std::vector<std::unique_ptr<AttentionBackend>> backends;
        std::vector<AttentionRequestGroup> groups;
        tasks.reserve(episodes);
        backends.reserve(episodes);
        groups.reserve(episodes);
        for (int e = 0; e < episodes; ++e) {
            tasks.push_back(workload.sample(episodeRng));
            const AttentionTask &task = tasks.back();
            backends.push_back(makeBackend(engineCfg, task.key,
                                           task.value));
            groups.push_back({backends.back().get(),
                              {task.queries[0]}});
        }
        const auto results =
            AttentionEngine::shared().runGroups(groups);

        double correct = 0.0;
        double rowsTotal = 0.0;
        double rowsScored = 0.0;
        for (int e = 0; e < episodes; ++e) {
            const AttentionResult &result = results[e][0];
            correct +=
                argmaxAccuracy(result.weights, tasks[e].relevant[0]);
            rowsTotal += static_cast<double>(tasks[e].key.rows());
            rowsScored += static_cast<double>(result.candidates.size());
        }
        std::printf("%-30s %8.1f%% %12.1f %12.1f\n", cfg.label,
                    100.0 * correct / episodes, rowsTotal / episodes,
                    rowsScored / episodes);
    }

    std::printf("\nApproximation skips the dot products (and softmax "
                "and weighted-sum work)\nfor every row that never "
                "becomes a candidate — the content-based-search\n"
                "insight of the paper (Section II-C).\n");
    return 0;
}
