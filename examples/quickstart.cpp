/**
 * @file
 * Quickstart: run exact and approximate attention on a small task.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 *
 * This walks the public API end to end: construct a key/value task,
 * answer a query exactly, then answer it again with A3's greedy
 * candidate selection + post-scoring approximation and compare.
 */

#include <cstdio>

#include "attention/approx_attention.hpp"
#include "attention/reference.hpp"
#include "engine/engine.hpp"
#include "util/random.hpp"

int
main()
{
    using namespace a3;

    // A tiny knowledge base: 8 entries of dimension 16. Row 5 is
    // constructed to match the query closely.
    Rng rng(7);
    const std::size_t n = 8;
    const std::size_t d = 16;
    Matrix key(n, d);
    Matrix value(n, d);
    Vector query(d);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal(0.0, 0.5));
            value(r, c) = static_cast<float>(r);  // row id pattern
        }
    }
    for (std::size_t c = 0; c < d; ++c)
        key(5, c) += 0.6f * query[c];  // plant the relevant row

    // 1. Exact attention (Figure 1 of the paper).
    const AttentionResult exact =
        referenceAttention(key, value, query);
    std::printf("exact:  top weight %.3f on row %u\n",
                exact.weights[5], 5u);

    // 2. Approximate attention with the paper's conservative preset
    //    (M = n/2 greedy iterations, keep rows within 5%% of the top
    //    post-softmax weight).
    const ApproxAttention engine(key, value,
                                 ApproxConfig::conservative());
    const AttentionResult approx = engine.run(query);

    std::printf("approx: %zu/%zu rows survived candidate selection, "
                "%zu kept after post-scoring\n",
                approx.candidates.size(), n, approx.kept.size());
    std::printf("        candidates:");
    for (std::uint32_t row : approx.candidates)
        std::printf(" %u", row);
    std::printf("\n");

    // 3. Compare outputs: both are dominated by value row 5.
    std::printf("output[0]: exact %.3f vs approx %.3f "
                "(max |diff| %.4f)\n",
                exact.output[0], approx.output[0],
                maxAbsDiff(exact.output, approx.output));

    // 4. Batched serving: the same preprocessed task answers a whole
    //    batch of queries through the shared AttentionEngine, fanned
    //    out over its thread pool with results in request order.
    std::vector<Vector> batch(4, query);
    for (std::size_t i = 1; i < batch.size(); ++i)
        for (auto &x : batch[i])
            x += 0.05f * static_cast<float>(rng.normal());
    const std::vector<AttentionResult> answers =
        AttentionEngine::shared().run(engine, batch);
    std::printf("engine: answered a batch of %zu queries over %zu "
                "thread(s);\n        batch[0] output matches the "
                "single-query run bit for bit: %s\n",
                answers.size(), AttentionEngine::shared().threads(),
                answers[0].output == approx.output ? "yes" : "no");
    return 0;
}
