/**
 * @file
 * Talking to A3 through the host-interface driver (the test-chip
 * deployment of Section VI-D): matrices and queries are marshalled as
 * 32-bit words over a modeled serial link, outputs read back word by
 * word, and the link cost is compared against the pipeline time.
 */

#include <cstdio>

#include "attention/multi_hop.hpp"
#include "sim/host_interface.hpp"
#include "util/random.hpp"
#include "workloads/babi_like.hpp"

int
main()
{
    using namespace a3;

    // A bAbI-style episode (the model the test chip was sized for).
    BabiLikeWorkload workload;
    Rng rng(23);
    const AttentionTask task = workload.sample(rng);
    const std::size_t n = task.key.rows();

    SimConfig cfg;
    cfg.maxRows = 64;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    A3Accelerator device(cfg);

    // The prototype drives GPIO pins at far below core clock; model
    // 32 core cycles per 32-bit word.
    HostInterface host(device, 32);

    host.loadTask(task.key, task.value);
    const Cycle loadCycles = host.linkCycles();
    std::printf("loaded %zu x 64 key+value over the link: %llu link "
                "cycles (comprehension time,\noff the query critical "
                "path per Section III-C)\n",
                n, static_cast<unsigned long long>(loadCycles));

    host.submitQuery(task.queries[0]);
    std::printf("query transfer: %llu link cycles vs %zu pipeline "
                "cycles (3n+27)\n",
                static_cast<unsigned long long>(
                    host.queryTransferCycles()),
                3 * n + 27);

    auto [pending, inflight] = host.status();
    std::printf("status after submit: %u outputs ready, %u in "
                "flight\n",
                pending, inflight);

    const auto output = host.readOutput();
    if (output) {
        std::printf("output[0..3]: %.3f %.3f %.3f %.3f\n",
                    (*output)[0], (*output)[1], (*output)[2],
                    (*output)[3]);
    }

    // The same task through the multi-hop software engine (MemN2N
    // uses 3 hops on bAbI) for comparison — a batch of questions
    // against the one preprocessed episode, hop chains dispatched in
    // parallel by the shared AttentionEngine.
    const MultiHopAttention hops(task.key, task.value,
                                 ApproxConfig::conservative(), 3);
    std::vector<Vector> questions;
    questions.push_back(task.queries[0]);
    for (int copy = 0; copy < 3; ++copy) {
        Vector q = task.queries[0];
        for (auto &x : q)
            x += 0.1f * static_cast<float>(rng.normal());
        questions.push_back(std::move(q));
    }
    const std::vector<MultiHopResult> batch = hops.runBatch(questions);
    const MultiHopResult &m = batch.front();
    std::printf("\n3-hop software run (%zu questions batched): "
                "per-hop candidates of question 0:",
                batch.size());
    for (const AttentionResult &hop : m.hops)
        std::printf(" %zu", hop.candidates.size());
    std::printf(" of %zu rows\n", n);
    return 0;
}
