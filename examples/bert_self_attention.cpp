/**
 * @file
 * BERT-style self-attention on the simulated A3 device.
 *
 * Self-attention reuses one key matrix for all 320 token queries,
 * which is what amortizes A3's sorted-key preprocessing (Section
 * IV-A). This example loads a SQuAD-like episode into a simulated
 * approximate A3 unit, streams all 320 queries through the pipeline,
 * and reports throughput, latency, and how many rows each pipeline
 * stage actually touched.
 */

#include <cstdio>

#include "sim/accelerator.hpp"
#include "workloads/squad_like.hpp"

int
main()
{
    using namespace a3;

    SquadLikeWorkload workload;
    Rng rng(13);
    const AttentionTask task = workload.sample(rng);
    const std::size_t n = task.key.rows();

    for (const auto &[label, mode, approx] :
         {std::tuple{"base A3", A3Mode::Base, ApproxConfig::exact()},
          std::tuple{"approx A3 (conservative)", A3Mode::Approx,
                     ApproxConfig::conservative()}}) {
        SimConfig cfg;
        cfg.maxRows = 320;
        cfg.dims = 64;
        cfg.mode = mode;
        cfg.approx = approx;

        A3Accelerator acc(cfg);
        acc.loadTask(task.key, task.value);
        const RunStats stats = acc.runAll(task.queries);

        std::printf("%s:\n", label);
        std::printf("  %llu queries over one shared %zu x 64 key "
                    "matrix\n",
                    static_cast<unsigned long long>(stats.queries), n);
        std::printf("  throughput: %.2f cycles/query "
                    "(%.2f Mqueries/s @1GHz)\n",
                    stats.cyclesPerQuery,
                    1e3 / stats.cyclesPerQuery);
        std::printf("  pipeline latency: %.0f cycles\n",
                    stats.avgLatency);
        if (mode == A3Mode::Approx) {
            std::printf("  avg candidates C = %.1f of %zu, kept "
                        "K = %.1f\n",
                        stats.avgCandidates, n, stats.avgKept);
        }
        for (const Stage *stage : acc.stages()) {
            std::printf("  stage %-20s rows processed: %llu\n",
                        stage->name().c_str(),
                        static_cast<unsigned long long>(
                            stage->stats().rowOps));
        }
        std::printf("\n");
    }

    std::printf("The sorted-key preprocessing is built once per "
                "sequence and reused by all %zu\nqueries; Section VI-C "
                "charges ~7%% amortized overhead to the conservative\n"
                "configuration, which bench/fig14_performance "
                "reproduces.\n",
                n);
    return 0;
}
