/**
 * @file
 * Streaming QA service: the serving layer end to end.
 *
 * Build and run:
 *     cmake -B build && cmake --build build
 *     ./build/examples/streaming_qa
 *
 * Two users hold long-lived story contexts. Questions stream in
 * interleaved; the SessionCache keeps each story's preprocessed
 * backend alive across requests, the BatchScheduler coalesces the
 * pending questions per session and answers them in one batched
 * engine pass, and a mid-stream context update rides the incremental
 * append() path instead of re-binding the whole story. The scheduler
 * runs behind an AdmissionPolicy — when one user floods the service,
 * the excess is shed with a typed outcome instead of growing the
 * queue without bound, and weighted round-robin keeps the other
 * user's share of each drain.
 */

#include <cstdio>
#include <string>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/random.hpp"

int
main()
{
    using namespace a3;

    Rng rng(11);
    const std::size_t d = 64;
    const auto randomMatrix = [&rng](std::size_t rows,
                                     std::size_t dims) {
        Matrix m(rows, dims);
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < dims; ++c)
                m(r, c) = static_cast<float>(rng.normal());
        return m;
    };
    const auto randomQuery = [&rng](std::size_t dims) {
        Vector q(dims);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
        return q;
    };

    // The service: a batched engine, a 4 MiB session cache, and an
    // admission-controlled coalescing scheduler in front of them. At
    // most 8 requests are answered per drain, at most 64 may queue
    // overall and 8 per session — past that, submit() sheds.
    AttentionEngine engine;
    SessionCache cache(4u << 20);
    AdmissionPolicy policy;
    policy.maxQueueDepth = 64;
    policy.maxPendingPerSession = 8;
    BatchScheduler scheduler(engine, cache, /*maxBatch=*/8, policy);
    EngineConfig config;
    config.kind = EngineKind::ApproxFloat;
    // Alice pays for priority: 2 slots per scheduling pass to Bob's 1.
    scheduler.setSessionWeight("alice", 2);

    // 1. Two users load their stories (the expensive bind: column
    //    sorting the key, Section IV-A). bindSession() returns a
    //    typed BindOutcome whose SessionHandle names this binding —
    //    later appends and submits go through the handle, so they can
    //    never land on a session that was evicted and re-bound.
    const BindOutcome alice = cache.bindSession(
        "alice", config, randomMatrix(320, d), randomMatrix(320, d));
    const BindOutcome bob = cache.bindSession(
        "bob", config, randomMatrix(512, d), randomMatrix(512, d));
    std::printf("bound 2 sessions (%s, %s), cache holds %zu "
                "bytes\n",
                bindStatusName(alice.status),
                bindStatusName(bob.status), cache.bytesInUse());

    // 2. A first wave of interleaved questions. The scheduler groups
    //    them per session so every question against one story shares
    //    its preprocessed backend.
    for (int i = 0; i < 4; ++i) {
        scheduler.submit(alice.handle, randomQuery(d));
        scheduler.submit(bob.handle, randomQuery(d));
    }
    for (const ServingResult &done : scheduler.drain()) {
        std::printf("ticket %llu (%s): %zu candidates, %zu rows kept\n",
                    static_cast<unsigned long long>(done.ticket),
                    done.session.c_str(), done.result.candidates.size(),
                    done.result.kept.size());
    }

    // 3. Alice's story grows mid-stream: 16 new sentences arrive. The
    //    incremental append() merges them into the sorted key instead
    //    of re-binding all 320 existing rows.
    const AppendOutcome grown = cache.appendSession(
        alice.handle, randomMatrix(16, d), randomMatrix(16, d));
    std::printf("appended %zu rows to alice's story (%s, now %zu "
                "rows)\n",
                grown.rowsAppended, appendStatusName(grown.status),
                alice.handle.backend()->rows());

    // 4. A second wave hits the warm cache: no preprocessing runs.
    for (int i = 0; i < 3; ++i) {
        scheduler.submit(alice.handle, randomQuery(d));
        scheduler.submit(bob.handle, randomQuery(d));
    }
    const auto wave2 = scheduler.drain();
    std::printf("second wave answered %zu questions\n", wave2.size());

    // 5. Bob floods the service with 20 rapid-fire questions. His
    //    8-request session cap sheds the excess with a typed outcome
    //    — the queue stays bounded and Alice's next question is still
    //    admitted.
    std::size_t admitted = 0;
    std::size_t shed = 0;
    for (int i = 0; i < 20; ++i) {
        const AdmissionOutcome outcome =
            scheduler.submit(bob.handle, randomQuery(d));
        if (outcome.admitted())
            ++admitted;
        else
            ++shed;
    }
    std::printf("bob's burst: %zu admitted, %zu shed (%s)\n",
                admitted, shed,
                admissionDecisionName(
                    AdmissionDecision::RejectedSessionCap));
    const bool aliceAdmitted =
        scheduler.submit(alice.handle, randomQuery(d)).admitted();
    std::printf("alice still admitted during bob's burst: %s\n",
                aliceAdmitted ? "yes" : "no");
    std::size_t answered = 0;
    while (scheduler.pending() > 0)
        answered += scheduler.drain().size();
    std::printf("burst drained in weighted order: %zu answered\n",
                answered);

    const SessionCacheStats stats = cache.stats();
    std::printf("cache counters: %llu hits, %llu misses, "
                "%llu appends, %llu evictions\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.appends),
                static_cast<unsigned long long>(stats.evictions));
    const BatchSchedulerStats sched = scheduler.stats();
    std::printf("scheduler counters: %llu submitted, %llu answered, "
                "%llu shed, %llu drains, %llu groups\n",
                static_cast<unsigned long long>(sched.submitted),
                static_cast<unsigned long long>(sched.answered),
                static_cast<unsigned long long>(sched.rejected()),
                static_cast<unsigned long long>(sched.drains),
                static_cast<unsigned long long>(sched.groups));
    // Latency values vary run to run, so print only their presence —
    // the example's stdout stays byte-identical across seeded runs.
    std::printf("queue-wait percentiles recorded: %s\n",
                sched.queueWaitP99 >= sched.queueWaitP50 ? "yes"
                                                         : "no");
    return 0;
}
