/**
 * @file
 * Driving the cycle-level A3 simulator directly: timing formulas,
 * per-stage activity, SRAM traffic, and the Table I energy model.
 *
 * This is the example to start from when extending the simulator —
 * it exercises every observable the device model exposes.
 */

#include <cstdio>

#include "baseline/device_models.hpp"
#include "energy/power_model.hpp"
#include "sim/accelerator.hpp"
#include "util/random.hpp"

int
main()
{
    using namespace a3;

    // A synthetic 320 x 64 task (the paper's maximum configuration).
    Rng rng(17);
    const std::size_t n = 320;
    const std::size_t d = 64;
    Matrix key(n, d);
    Matrix value(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    std::vector<Vector> queries(8);
    for (auto &q : queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = d;
    cfg.mode = A3Mode::Approx;
    cfg.approx = ApproxConfig::conservative();

    A3Accelerator acc(cfg);
    acc.loadTask(key, value);
    const RunStats stats = acc.runAll(queries);

    std::printf("simulated %llu queries in %llu cycles\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.totalCycles));
    std::printf("pipeline latency %.0f cycles "
                "(base formula would be 3n+27 = %zu)\n",
                stats.avgLatency, 3 * n + 27);
    std::printf("throughput %.1f cycles/query (base: n+9 = %zu)\n\n",
                stats.cyclesPerQuery, n + 9);

    std::printf("%-22s %12s %8s %10s\n", "stage", "active cycles",
                "jobs", "row ops");
    for (const Stage *stage : acc.stages()) {
        const StageStats &s = stage->stats();
        std::printf("%-22s %12llu %8llu %10llu\n",
                    stage->name().c_str(),
                    static_cast<unsigned long long>(s.activeCycles),
                    static_cast<unsigned long long>(s.jobs),
                    static_cast<unsigned long long>(s.rowOps));
    }

    std::printf("\nSRAM traffic:\n");
    for (const Sram *sram : {&acc.keySram(), &acc.valueSram(),
                             &acc.sortedKeySram()}) {
        std::printf("  %-18s %6zu bytes live, %llu reads, "
                    "%llu writes\n",
                    sram->name().c_str(), sram->liveBytes(),
                    static_cast<unsigned long long>(sram->reads()),
                    static_cast<unsigned long long>(sram->writes()));
    }

    const EnergyBreakdown energy = PowerModel::computeEnergy(acc);
    std::printf("\nenergy (Table I model): %.2f nJ total for the run\n",
                energy.total() * 1e9);
    const auto f = energy.fractions();
    std::printf("  candidate selection %.1f%%, dot product %.1f%%, "
                "exponent(+PS) %.1f%%,\n  output %.1f%%, memory "
                "%.1f%%\n",
                100 * f[0], 100 * f[1], 100 * f[2], 100 * f[3],
                100 * f[4]);
    std::printf("energy per attention op: %.2f nJ (Xeon at TDP would "
                "burn %.1f uJ in the same role)\n",
                energy.total() * 1e9 /
                    static_cast<double>(stats.queries),
                PowerModel::referenceEnergy(
                    xeonGold6128(),
                    CpuTimingModel{}.singleQuerySeconds(n, d)) *
                    1e6);
    return 0;
}
