/**
 * @file
 * Huge-context QA: one session larger than any single backend task.
 *
 * Build and run:
 *     cmake -B build && cmake --build build
 *     ./build/examples/huge_context_qa
 *
 * A user loads a context of 100k+ rows — far past the n ~ 10^2..10^3
 * tasks the paper's accelerator binds — so the serving tier shards
 * it: row-contiguous slices each bind an inner backend, the engine
 * flattens each query into per-shard work units on its lanes, and
 * the per-shard softmax partials merge with the numerically stable
 * log-sum-exp combine.
 * The sharded session then rides the ordinary serving tier: cached
 * by byte size, coalesced by the scheduler, and extended mid-stream
 * through append(), which fills the last shard before opening a new
 * one.
 */

#include <cmath>
#include <cstdio>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "serving/sharded_backend.hpp"
#include "util/random.hpp"

int
main()
{
    using namespace a3;

    Rng rng(17);
    const std::size_t n = 120000;
    const std::size_t d = 32;
    const auto randomMatrix = [&rng](std::size_t rows,
                                     std::size_t dims) {
        Matrix m(rows, dims);
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < dims; ++c)
                m(r, c) = static_cast<float>(rng.normal());
        return m;
    };
    const auto randomQuery = [&rng](std::size_t dims) {
        Vector q(dims);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
        return q;
    };

    // 1. Build the huge context and shard it: 16k-row shards. The
    //    serving engine flattens the per-shard partial passes of
    //    every drained batch into one work list — no pool to plumb.
    const Matrix key = randomMatrix(n, d);
    const Matrix value = randomMatrix(n, d);
    EngineConfig config;
    config.kind = EngineKind::ExactFloat;
    ShardedConfig sharding;
    sharding.shardRows = 16384;

    AttentionEngine engine;
    ShardStore store;  // cross-session dedup of frozen shards
    SessionCacheConfig cacheConfig;
    cacheConfig.byteBudget = 256u << 20;
    cacheConfig.engine = config;
    cacheConfig.shardRows = sharding.shardRows;
    cacheConfig.store = &store;
    SessionCache cache(cacheConfig);
    BatchScheduler scheduler(engine, cache);
    const BindOutcome corpus =
        cache.bindSession("research-corpus", key, value);
    const auto backend = corpus.handle.backend();
    const auto &sharded =
        dynamic_cast<const ShardedBackend &>(*backend);
    std::printf("bound %zu rows as %zu shards (%zu MiB in cache)\n",
                backend->rows(), sharded.shardCount(),
                cache.bytesInUse() >> 20);

    // A second session over the same corpus shares its frozen shards
    // through the store instead of re-binding them: the cache charges
    // the shared bytes once, so the second binding is nearly free.
    const BindOutcome reviewer =
        cache.bindSession("reviewer-corpus", key, value);
    std::printf("second session over the same corpus: %s, "
                "%zu/%zu shards shared, +%zu MiB charged\n",
                bindStatusName(reviewer.status), reviewer.sharedShards,
                reviewer.shardCount, reviewer.chargedBytes >> 20);

    // 2. Questions stream through the ordinary serving tier.
    for (int i = 0; i < 4; ++i)
        scheduler.submit(corpus.handle, randomQuery(d));
    for (const ServingResult &done : scheduler.drain()) {
        float weightSum = 0.0f;
        for (const float w : done.result.weights)
            weightSum += w;
        std::printf("ticket %llu: %zu rows attended, "
                    "weight sum %.6f\n",
                    static_cast<unsigned long long>(done.ticket),
                    done.result.kept.size(), weightSum);
    }

    // 3. Sanity: the sharded answer matches an unsharded reference
    //    backend over the same task to float accuracy.
    const Vector probe = randomQuery(d);
    const ReferenceAttention unsharded(key, value);
    const float diff = maxAbsDiff(backend->run(probe).output,
                                  unsharded.run(probe).output);
    std::printf("max |sharded - unsharded| over one probe: %.3e\n",
                static_cast<double>(diff));

    // 4. The corpus grows mid-stream: appended rows fill the last
    //    shard to capacity, then open a new shard.
    const AppendOutcome grown = cache.appendSession(
        corpus.handle, randomMatrix(20000, d), randomMatrix(20000, d));
    std::printf("appended %zu rows: now %zu rows in %zu shards\n",
                grown.rowsAppended, backend->rows(),
                grown.shardCount);

    scheduler.submit(corpus.handle, randomQuery(d));
    const auto wave2 = scheduler.drain();
    std::printf("post-append question answered over %zu rows\n",
                wave2.front().result.weights.size());
    return 0;
}
